// Flow-level bulk-transfer mode: max-min fair bandwidth sharing over the
// topology's capacitated links plus per-endpoint NIC port capacities,
// recomputed only on flow start/finish — so a bulk transfer costs O(1)
// scheduled events regardless of size, instead of per-segment NIC and
// link events. This is the standard flow-simulation trade (replicant-opera
// style): queueing dynamics inside a transfer are abstracted into a fluid
// rate, while the rate allocation still sees every concurrent transfer.
//
// Determinism: flows are processed in ascending id order everywhere, rates
// are pure functions of the active set, and completion events are
// epoch-guarded (the kernel has no event cancellation, so a superseded
// completion tick finds a bumped epoch and does nothing). No wall-clock,
// no randomness.
#pragma once

#include <cstdint>
#include <vector>

#include "l2sim/common/units.hpp"
#include "l2sim/des/scheduler.hpp"
#include "l2sim/net/params.hpp"
#include "l2sim/net/topology.hpp"

namespace l2s::net {

class FlowNetwork {
 public:
  /// `topo` and `params` must outlive the flow network. Endpoint ports
  /// (one tx + one rx per node, at the host line rate) bound every flow
  /// even on contention-free topologies.
  FlowNetwork(des::Scheduler& sched, Topology& topo, const NetParams& params);

  /// Start a bulk transfer; `on_done` fires when the last byte has been
  /// delivered (max-min transmission time + the path's latency floor).
  void start(int src, int dst, Bytes bytes, des::EventFn on_done);

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }
  [[nodiscard]] std::uint64_t flows_started() const { return started_; }
  [[nodiscard]] std::uint64_t flows_completed() const { return completed_; }
  /// Max-min rate recomputations (one per flow start/finish batch).
  [[nodiscard]] std::uint64_t rate_recomputes() const { return recomputes_; }
  [[nodiscard]] std::size_t max_concurrent() const { return max_concurrent_; }

  void reset_stats();

 private:
  struct Flow {
    std::uint64_t id = 0;
    int src = 0;
    int dst = 0;
    double remaining_bits = 0.0;
    double rate_bps = 0.0;
    /// Constraint ids: 0..N-1 tx ports, N..2N-1 rx ports, 2N+i link i.
    std::vector<std::size_t> constraints;
    des::EventFn done;
  };

  /// Progressive-filling max-min allocation over the active set.
  void recompute_rates();
  /// Bill every active flow for the time elapsed since the last progress
  /// point at its current rate (and attribute the bits to path links).
  void advance_progress();
  /// Recompute rates and schedule the next (epoch-guarded) completion tick.
  void reschedule();
  void on_tick(std::uint64_t epoch);

  [[nodiscard]] double constraint_capacity(std::size_t c) const;

  des::Scheduler& sched_;
  Topology& topo_;
  const NetParams& params_;  // NOLINT(*-avoid-const-or-ref-data-members)
  std::vector<Flow> flows_;  ///< active, ascending id
  SimTime last_progress_ = 0;
  std::uint64_t next_id_ = 0;
  std::uint64_t epoch_ = 0;  ///< bumped on every reschedule; stale ticks no-op
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t recomputes_ = 0;
  std::size_t max_concurrent_ = 0;
};

}  // namespace l2s::net
