// A node's network interface: independent receive and transmit queues
// (the model's mu_i and mu_o stations).
#pragma once

#include <string>

#include "l2sim/des/resource.hpp"
#include "l2sim/net/params.hpp"

namespace l2s::net {

class Nic {
 public:
  Nic(des::Scheduler& sched, const std::string& node_name);

  [[nodiscard]] des::Resource& rx() { return rx_; }
  [[nodiscard]] des::Resource& tx() { return tx_; }
  [[nodiscard]] const des::Resource& rx() const { return rx_; }
  [[nodiscard]] const des::Resource& tx() const { return tx_; }

  void reset_stats();

 private:
  des::Resource rx_;
  des::Resource tx_;
};

}  // namespace l2s::net
