// The cluster switch. The paper simulates a very fast switched network and
// explicitly excludes contention inside the fabric, so the switch is a pure
// latency element (1 us per traversal), not a queue.
#pragma once

#include "l2sim/des/scheduler.hpp"
#include "l2sim/net/params.hpp"

namespace l2s::net {

class SwitchFabric {
 public:
  SwitchFabric(des::Scheduler& sched, SimTime latency);

  /// Deliver after the fabric latency. Counts traversals for reports.
  void traverse(des::EventFn deliver);

  [[nodiscard]] std::uint64_t traversals() const { return traversals_; }
  [[nodiscard]] SimTime latency() const { return latency_; }
  void reset_stats() { traversals_ = 0; }

 private:
  des::Scheduler& sched_;
  SimTime latency_;
  std::uint64_t traversals_ = 0;
};

}  // namespace l2s::net
