// Network timing parameters (Section 5.1 of the paper).
//
// The cluster interconnect is Gigabit Ethernet driven through M-VIA:
// sending a 4-byte message takes 19 us one way — 3 us CPU on each side,
// 6 us NIC on each side, and 1 us of switch latency. Links peak at
// 1 Gbit/s; the router to the Internet is a 4 Gbit/s-class device
// (mu_r = 500000/size ops/s with size in KBytes).
#pragma once

#include "l2sim/common/units.hpp"

namespace l2s::net {

struct NetParams {
  double link_bits_per_s = 1e9;        ///< cluster link bandwidth
  double nic_msg_overhead_s = 6e-6;    ///< per VIA message per NIC
  double cpu_msg_overhead_s = 3e-6;    ///< per VIA message per CPU side
  double switch_latency_s = 1e-6;      ///< fabric latency (contention-free)
  double ni_request_rate = 140000.0;   ///< mu_i: client request receive rate
  double ni_reply_overhead_s = 3e-6;   ///< mu_o fixed term for replies
  double router_kb_per_s = 500000.0;   ///< mu_r: router service capacity

  /// Service time of a NIC moving `bytes` of payload with VIA overheads.
  [[nodiscard]] SimTime nic_transfer_time(Bytes bytes) const {
    return seconds_to_simtime(nic_msg_overhead_s +
                              transfer_seconds(bytes, link_bits_per_s));
  }

  /// Service time of the NI-in queue for a client request (mu_i).
  [[nodiscard]] SimTime ni_request_time() const {
    return seconds_to_simtime(1.0 / ni_request_rate);
  }

  /// Service time of the NI-out queue for a reply of `bytes` (mu_o).
  [[nodiscard]] SimTime ni_reply_time(Bytes bytes) const {
    return seconds_to_simtime(ni_reply_overhead_s +
                              transfer_seconds(bytes, link_bits_per_s));
  }

  /// Service time of the router for `bytes` (mu_r).
  [[nodiscard]] SimTime router_time(Bytes bytes) const {
    return seconds_to_simtime(bytes_to_kib(bytes) / router_kb_per_s);
  }

  [[nodiscard]] SimTime switch_latency() const {
    return seconds_to_simtime(switch_latency_s);
  }

  [[nodiscard]] SimTime cpu_msg_time() const {
    return seconds_to_simtime(cpu_msg_overhead_s);
  }

  /// Minimum elapsed time between an event on one node and its earliest
  /// possible consequence on another: before anything can happen at a
  /// receiver, a VIA message pays the sender-side CPU overhead, the
  /// sender-side NIC overhead, and the switch traversal (3 + 6 + 1 us at
  /// the paper's constants — payload transfer and receiver-side costs only
  /// add to it). This bound is the guaranteed lookahead that lets the
  /// sharded DES engine (des/sharded_scheduler.hpp) run node shards
  /// concurrently without ever delivering a message into a shard's past.
  [[nodiscard]] SimTime min_cross_node_latency() const {
    return cpu_msg_time() + nic_transfer_time(0) + switch_latency();
  }
};

}  // namespace l2s::net
