// Pluggable cluster interconnect topologies.
//
// The paper simulates one very fast, contention-free switch — which is
// exactly why its cluster stops at 16 nodes. Topology carves that
// hard-wired path into an interface the VIA layer routes through:
//
//   SingleSwitch  the paper's fabric: one pure-latency element, no links,
//                 no contention. Bit-identical to the pre-refactor
//                 SwitchFabric path (the golden-digest suite pins it).
//   RackAware     hosts grouped into racks behind ToR switches; same-rack
//                 traffic pays one ToR hop (contention-free, like the
//                 paper's switch), cross-rack traffic crosses capacitated,
//                 oversubscribed uplink/downlink Links and a core switch.
//   FatTree       the k-ary fat-tree: k pods of (k/2) edge and (k/2)
//                 aggregation switches, (k/2)^2 cores, k^3/4 hosts; full
//                 bisection bandwidth but per-path Link contention, with
//                 deterministic hash-based path selection.
//
// Every topology exposes:
//   * traverse(src, dst, bytes, deliver) — the message-mode path: switch
//     hops are latency events, capacitated hops queue store-and-forward
//     segments (segment_bytes) through Link FIFOs;
//   * min_latency(src, dst) — a guaranteed lower bound on traverse for any
//     payload and congestion: the sum of the path's switch latencies. This
//     per-pair bound is what the sharded DES engine consumes as pairwise
//     lookahead (shards aligned to racks get wider windows than the global
//     single-switch bound allows);
//   * rack_of(node) — the locality coordinate, which is also the shard
//     alignment unit (TopologyConfig::rack_span);
//   * the Link set, for flow-level bandwidth sharing (flow.hpp) and
//     per-link utilization telemetry.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "l2sim/common/units.hpp"
#include "l2sim/des/scheduler.hpp"
#include "l2sim/net/link.hpp"
#include "l2sim/net/params.hpp"

namespace l2s::net {

enum class TopologyKind { kSingleSwitch, kRackAware, kFatTree };

/// Topology selection + geometry, embedded in core::SimConfig. Defaults
/// reproduce the paper's single switch exactly.
struct TopologyConfig {
  TopologyKind kind = TopologyKind::kSingleSwitch;

  // kRackAware geometry: `racks` must divide the node count. Uplink and
  // downlink capacity per rack is (hosts_per_rack * link rate) /
  // oversubscription — oversubscription 1.0 is full bisection, the
  // classic 4.0 means the rack can only push a quarter of its aggregate
  // host bandwidth into the core.
  int racks = 4;
  double oversubscription = 4.0;
  /// Core-switch traversal latency (rack-aware core, fat-tree core tier).
  double core_latency_s = 1e-6;

  /// kFatTree: the arity; even, >= 2; capacity k^3/4 hosts.
  int fat_tree_k = 4;

  /// Store-and-forward unit on capacitated hops: message-mode bulk
  /// payloads are segmented into frames of this size so a big transfer
  /// pays per-frame event cost (the cost flow-level mode removes).
  /// SingleSwitch never segments — it has no capacitated hops.
  Bytes segment_bytes = 16 * 1024;

  /// Route bulk transfers (ViaNetwork::bulk — request forwarding replies,
  /// cache-fill payloads) through the flow-level max-min bandwidth-sharing
  /// network instead of per-segment events. Control messages always stay
  /// message-mode.
  bool flow_level = false;

  /// Throws l2s::Error on inconsistent geometry (e.g. nodes not divisible
  /// by racks, odd fat-tree arity, nodes beyond fat-tree capacity).
  void validate(int nodes) const;

  /// The locality-group size shard partitioning aligns to: 1 for the
  /// single switch (no locality), hosts-per-rack for rack-aware, k/2
  /// (hosts per edge switch) for the fat-tree. Defensive against
  /// not-yet-validated geometry: returns 1 rather than throwing.
  [[nodiscard]] int rack_span(int nodes) const;

  [[nodiscard]] const char* kind_name() const;
};

class Topology {
 public:
  Topology(des::Scheduler& sched, const NetParams& params)
      : sched_(sched), params_(params) {}
  virtual ~Topology() = default;

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual int nodes() const = 0;
  [[nodiscard]] virtual int racks() const = 0;
  [[nodiscard]] virtual int rack_of(int node) const = 0;
  /// Switch traversals on the src -> dst path (1 for one shared switch).
  [[nodiscard]] virtual int hops(int src, int dst) const = 0;
  /// Guaranteed lower bound on traverse(src, dst, ...) delivery delay for
  /// any payload size and any congestion: the path's switch latencies.
  [[nodiscard]] virtual SimTime min_latency(int src, int dst) const = 0;
  /// Message-mode delivery: schedule `deliver` after the path's switch
  /// hops and (store-and-forward, segmented) capacitated link transfers.
  virtual void traverse(int src, int dst, Bytes bytes, des::EventFn deliver) = 0;
  /// Append the indices of the capacitated links on the src -> dst path
  /// (empty for contention-free paths). Used by the flow network.
  virtual void path_links(int src, int dst, std::vector<std::size_t>& out) const;

  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] Link& link(std::size_t i) { return *links_[i]; }
  [[nodiscard]] const Link& link(std::size_t i) const { return *links_[i]; }

  /// Messages routed through the topology (one per traverse call).
  [[nodiscard]] std::uint64_t traversals() const { return traversals_; }
  virtual void reset_stats();

  /// Build the configured topology over `nodes` hosts. Geometry problems
  /// surface via TopologyConfig::validate (call it first for friendly
  /// errors); construction itself only hard-requires what it cannot
  /// tolerate. `params` must outlive the topology.
  [[nodiscard]] static std::unique_ptr<Topology> make(const TopologyConfig& config,
                                                      des::Scheduler& sched,
                                                      const NetParams& params,
                                                      int nodes);

 protected:
  des::Scheduler& sched_;
  const NetParams& params_;  // NOLINT(*-avoid-const-or-ref-data-members)
  std::vector<std::unique_ptr<Link>> links_;
  std::uint64_t traversals_ = 0;
};

/// The paper's fabric: a pure latency element shared by every node pair,
/// explicitly contention-free. traverse schedules exactly one event —
/// the same event, in the same order, as the pre-refactor SwitchFabric —
/// so the golden digests are preserved bit-for-bit.
class SingleSwitch final : public Topology {
 public:
  SingleSwitch(des::Scheduler& sched, const NetParams& params, int nodes);

  [[nodiscard]] const char* name() const override { return "single-switch"; }
  [[nodiscard]] int nodes() const override { return nodes_; }
  [[nodiscard]] int racks() const override { return 1; }
  [[nodiscard]] int rack_of(int /*node*/) const override { return 0; }
  [[nodiscard]] int hops(int /*src*/, int /*dst*/) const override { return 1; }
  [[nodiscard]] SimTime min_latency(int /*src*/, int /*dst*/) const override {
    return latency_;
  }
  void traverse(int src, int dst, Bytes bytes, des::EventFn deliver) override;
  [[nodiscard]] SimTime latency() const { return latency_; }

 private:
  int nodes_;
  SimTime latency_;
};

/// Hosts in racks behind ToR switches; racks joined by one core switch
/// over capacitated, oversubscribed uplink/downlink Links. Same-rack
/// traffic is contention-free (one ToR hop, like the paper's switch);
/// cross-rack traffic pays ToR -> uplink -> core -> downlink -> ToR with
/// store-and-forward segmentation on both links.
class RackAware final : public Topology {
 public:
  RackAware(des::Scheduler& sched, const NetParams& params, int nodes,
            const TopologyConfig& config);

  [[nodiscard]] const char* name() const override { return "rack-aware"; }
  [[nodiscard]] int nodes() const override { return nodes_; }
  [[nodiscard]] int racks() const override { return racks_; }
  [[nodiscard]] int rack_of(int node) const override { return node / span_; }
  [[nodiscard]] int hops(int src, int dst) const override {
    return rack_of(src) == rack_of(dst) ? 1 : 3;
  }
  [[nodiscard]] SimTime min_latency(int src, int dst) const override {
    return rack_of(src) == rack_of(dst) ? tor_latency_
                                        : 2 * tor_latency_ + core_latency_;
  }
  void traverse(int src, int dst, Bytes bytes, des::EventFn deliver) override;
  void path_links(int src, int dst, std::vector<std::size_t>& out) const override;

  [[nodiscard]] Link& uplink(int rack) { return link(2 * static_cast<std::size_t>(rack)); }
  [[nodiscard]] Link& downlink(int rack) {
    return link(2 * static_cast<std::size_t>(rack) + 1);
  }

 private:
  int nodes_;
  int racks_;
  int span_;  ///< hosts per rack
  SimTime tor_latency_;
  SimTime core_latency_;
  Bytes segment_;
};

/// The k-ary fat-tree (Al-Fahoum/Leiserson form): k pods, each with k/2
/// edge and k/2 aggregation switches; (k/2)^2 core switches; k/2 hosts per
/// edge switch. Full bisection bandwidth, but individual paths contend on
/// their edge<->agg and agg<->core Links; the path (which aggregation
/// column, which core) is a deterministic hash of (src, dst), standing in
/// for ECMP.
class FatTree final : public Topology {
 public:
  FatTree(des::Scheduler& sched, const NetParams& params, int nodes,
          const TopologyConfig& config);

  [[nodiscard]] const char* name() const override { return "fat-tree"; }
  [[nodiscard]] int nodes() const override { return nodes_; }
  [[nodiscard]] int racks() const override { return edges_; }
  [[nodiscard]] int rack_of(int node) const override { return node / half_k_; }
  [[nodiscard]] int hops(int src, int dst) const override;
  [[nodiscard]] SimTime min_latency(int src, int dst) const override;
  void traverse(int src, int dst, Bytes bytes, des::EventFn deliver) override;
  void path_links(int src, int dst, std::vector<std::size_t>& out) const override;

  [[nodiscard]] int k() const { return k_; }

 private:
  [[nodiscard]] int edge_of(int node) const { return node / half_k_; }
  [[nodiscard]] int pod_of(int node) const { return edge_of(node) / half_k_; }
  /// Deterministic ECMP stand-in: which aggregation column / core row the
  /// (src, dst) pair hashes to.
  [[nodiscard]] std::uint32_t route_hash(int src, int dst) const;

  // Flat link indexing (see topology.cpp for the layout).
  [[nodiscard]] std::size_t edge_up(int edge, int agg) const;
  [[nodiscard]] std::size_t edge_down(int edge, int agg) const;
  [[nodiscard]] std::size_t agg_up(int pod, int agg, int core_row) const;
  [[nodiscard]] std::size_t agg_down(int pod, int agg, int core_row) const;

  int nodes_;
  int k_;
  int half_k_;
  int edges_;  ///< total edge switches = pods * k/2
  SimTime switch_latency_;
  SimTime core_latency_;
  Bytes segment_;
};

}  // namespace l2s::net
