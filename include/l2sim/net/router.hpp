// The bridge/router between the cluster and the Internet — a shared
// single-server queue with the paper's mu_r = 500000/size ops/s capacity
// (about 4 Gbit/s, approximating a Cisco 7576). All client requests enter
// and all replies leave through it.
#pragma once

#include "l2sim/des/resource.hpp"
#include "l2sim/net/params.hpp"

namespace l2s::net {

class Router {
 public:
  Router(des::Scheduler& sched, const NetParams& params);

  /// Move `bytes` through the router, then fire `done`.
  void forward(Bytes bytes, des::EventFn done);

  [[nodiscard]] des::Resource& resource() { return res_; }
  [[nodiscard]] const des::Resource& resource() const { return res_; }

 private:
  const NetParams& params_;
  des::Resource res_;
};

}  // namespace l2s::net
