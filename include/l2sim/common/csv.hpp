// CSV emission for bench harnesses: when L2SIM_CSV_DIR is set (or a path is
// passed explicitly), each experiment also writes its series as CSV so plots
// can be regenerated outside the binary.
#pragma once

#include <fstream>
#include <optional>
#include <string>
#include <vector>

namespace l2s {

class CsvWriter {
 public:
  /// Opens `<dir>/<name>.csv` if `dir` is non-empty; otherwise a no-op sink.
  CsvWriter(const std::string& dir, const std::string& name,
            std::vector<std::string> header);

  /// No-op sink (writes nowhere).
  CsvWriter();

  void add_row(const std::vector<std::string>& cells);
  [[nodiscard]] bool active() const { return out_.has_value(); }

 private:
  std::optional<std::ofstream> out_;
  std::size_t columns_ = 0;
};

/// Resolve the CSV output directory for benches: explicit --csv=DIR argument
/// wins, then the L2SIM_CSV_DIR environment variable, else empty (disabled).
[[nodiscard]] std::string csv_dir_from_args(int argc, char** argv);

}  // namespace l2s
