// Environment-variable knobs shared by the bench harnesses.
#pragma once

#include <cstdint>

namespace l2s {

/// Scale factor applied to synthetic trace request counts in benches.
/// Default 0.1 (each reproduced figure uses 10% of the paper's request
/// volume, which preserves the steady-state behaviour because caches are
/// warmed beforehand); L2SIM_SCALE=1 runs paper-scale traces.
[[nodiscard]] double bench_scale();

/// Parse a double environment variable with a default.
[[nodiscard]] double env_double(const char* name, double fallback);

/// Parse an integer environment variable with a default.
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);

/// The process-wide thread budget every parallel component (run_parallel
/// job workers, ShardedScheduler windows) draws from, so their product
/// never oversubscribes the machine. L2SIM_THREADS overrides; otherwise
/// hardware concurrency. Always >= 1.
[[nodiscard]] unsigned thread_budget();

}  // namespace l2s
