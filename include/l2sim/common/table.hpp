// Plain-text table formatting for the bench harnesses: every reproduced
// table/figure prints an aligned text table matching the paper's rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace l2s {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with a fixed precision. Rendered with a header rule, e.g.:
///
///   Trace      Num files   Avg file size
///   ---------  ----------  -------------
///   Calgary         8397        42.9 KB
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Append a cell-by-cell row built via repeated calls.
  TextTable& cell(std::string value);
  TextTable& cell(double value, int precision = 2);
  TextTable& cell(long long value);
  void end_row();

  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

/// Format a double with fixed precision (helper shared with CSV output).
[[nodiscard]] std::string format_double(double value, int precision);

}  // namespace l2s
