// Deterministic pseudo-random number generation.
//
// All stochastic components (trace synthesis, size distributions, tie
// breaking) draw from an Rng seeded explicitly, so every experiment is
// reproducible bit-for-bit. The generator is SplitMix64 feeding
// xoshiro256**, implemented here to avoid any dependence on the standard
// library's unspecified distributions.
#pragma once

#include <array>
#include <cstdint>

namespace l2s {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double next_exponential(double rate);

  /// Lognormal with the given parameters of the underlying normal.
  double next_lognormal(double mu, double sigma);

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double next_normal();

  /// Bounded Pareto on [lo, hi] with shape alpha.
  double next_bounded_pareto(double alpha, double lo, double hi);

  /// Derive an independent stream (for per-component generators).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace l2s
