// Minimal --flag/value command-line parser used by the l2sim CLI (and
// available to downstream tools). Flags may be boolean (present without a
// value), `--key value`, or `--key=value`; anything not starting with
// "--" is positional.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace l2s {

class CliArgs {
 public:
  /// Parse argv[start..argc).
  CliArgs(int argc, const char* const* argv, int start = 1);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace l2s
