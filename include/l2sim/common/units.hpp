// Units used throughout l2sim.
//
// Simulated time is kept in integer nanoseconds (SimTime) so that event
// ordering is exact and runs are reproducible; all service-time formulas are
// computed in double seconds and converted at the boundary.
#pragma once

#include <cstdint>

namespace l2s {

/// Simulated time in nanoseconds since the start of the run.
using SimTime = std::int64_t;

/// A size in bytes (file sizes, cache capacities, message payloads).
using Bytes = std::uint64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// The paper quotes sizes in "KBytes" meaning 2^10 bytes and bandwidths in
/// decimal units (e.g. 10 MBytes/s disks, 1 Gbit/s links); we follow suit.
inline constexpr double kBitsPerByte = 8.0;

inline constexpr SimTime kNsPerSec = 1'000'000'000;

/// Convert a duration in (double) seconds to integer nanoseconds, rounding
/// to nearest. Negative durations are a programming error and are clamped
/// in release builds (checked in debug by callers that care).
[[nodiscard]] constexpr SimTime seconds_to_simtime(double sec) {
  const double ns = sec * 1e9;
  return static_cast<SimTime>(ns + (ns >= 0.0 ? 0.5 : -0.5));
}

[[nodiscard]] constexpr double simtime_to_seconds(SimTime t) {
  return static_cast<double>(t) * 1e-9;
}

[[nodiscard]] constexpr double bytes_to_kib(Bytes b) {
  return static_cast<double>(b) / 1024.0;
}

[[nodiscard]] constexpr Bytes kib_to_bytes(double kib) {
  return static_cast<Bytes>(kib * 1024.0 + 0.5);
}

/// Time to push `bytes` through a link of `bits_per_sec` capacity.
[[nodiscard]] constexpr double transfer_seconds(Bytes bytes, double bits_per_sec) {
  return static_cast<double>(bytes) * kBitsPerByte / bits_per_sec;
}

/// Pretty string like "1.50 s", "340 us" for humans; defined in units.cpp.
[[nodiscard]] double simtime_ms(SimTime t);

}  // namespace l2s
