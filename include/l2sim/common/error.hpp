// Error handling: l2sim throws l2s::Error for user-facing failures
// (bad parameters, malformed traces) and uses L2S_REQUIRE for internal
// invariants that indicate a bug if violated.
#pragma once

#include <stdexcept>
#include <string>

namespace l2s {

/// Exception type for all user-facing l2sim failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void throw_error(const std::string& message);

/// Failure path of L2S_REQUIRE (out of line: builds the message and throws).
[[noreturn]] void require_fail(const char* expr, const char* file, int line);

/// Internal invariant check; active in all build types because simulation
/// correctness bugs are silent otherwise. Kept as a wrapper for code that
/// wants a function; the macro below tests the condition inline so the DES
/// hot path (millions of checks per simulated second) pays one predictable
/// branch, not a function call.
inline void require(bool condition, const char* expr, const char* file, int line) {
  if (!condition) require_fail(expr, file, line);
}

}  // namespace l2s

#define L2S_REQUIRE(cond) \
  (static_cast<bool>(cond) ? void(0) : ::l2s::require_fail(#cond, __FILE__, __LINE__))
