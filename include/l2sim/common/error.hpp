// Error handling: l2sim throws l2s::Error for user-facing failures
// (bad parameters, malformed traces) and uses L2S_REQUIRE for internal
// invariants that indicate a bug if violated.
#pragma once

#include <stdexcept>
#include <string>

namespace l2s {

/// Exception type for all user-facing l2sim failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void throw_error(const std::string& message);

/// Internal invariant check; active in all build types because simulation
/// correctness bugs are silent otherwise and the checks are off the hot path.
void require(bool condition, const char* expr, const char* file, int line);

}  // namespace l2s

#define L2S_REQUIRE(cond) ::l2s::require((cond), #cond, __FILE__, __LINE__)
