// Named monotonically increasing counters with stable iteration order.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace l2s::stats {

class CounterSet {
 public:
  /// Increment (creating at zero on first use).
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Current value; zero if never touched.
  [[nodiscard]] std::uint64_t get(const std::string& name) const;

  /// Counters in first-touch order.
  [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>& items() const {
    return items_;
  }

  void reset();

 private:
  std::vector<std::pair<std::string, std::uint64_t>> items_;
};

}  // namespace l2s::stats
