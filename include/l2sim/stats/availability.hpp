// Degradation observability for fault experiments: per-interval goodput,
// failure-detection latency, time-to-readmission after repair, and retry
// amplification. Fed by the simulation lifecycle and the fault runtime,
// summarized into SimResult at collection time.
#pragma once

#include <cstdint>
#include <vector>

#include "l2sim/common/units.hpp"
#include "l2sim/stats/accumulator.hpp"
#include "l2sim/telemetry/metrics.hpp"

namespace l2s::stats {

class AvailabilityTracker {
 public:
  /// Arm the tracker at the start of the measured pass. `interval` > 0
  /// enables the goodput timeline; 0 keeps only the scalar statistics.
  void begin(SimTime start, SimTime interval, int nodes);

  // --- request outcomes --------------------------------------------------
  void record_completion(SimTime t);
  void record_failure(SimTime t);
  void record_retry() { ++retries_; }

  // --- fault lifecycle ---------------------------------------------------
  void record_crash(int node, SimTime t);
  /// The cluster noticed the crash (policy told to stop using the node).
  void record_detection(int node, SimTime t);
  /// The node restarted (cold); readmission is still pending.
  void record_repair(int node, SimTime t);
  /// The policy readmitted the repaired node.
  void record_readmission(int node, SimTime t);

  // --- results -----------------------------------------------------------
  [[nodiscard]] const Accumulator& detection_latency_ms() const { return detect_ms_; }
  [[nodiscard]] const Accumulator& readmission_ms() const { return readmit_ms_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }

  /// Completions per second, per interval, covering [start, end).
  [[nodiscard]] std::vector<double> goodput_rps(SimTime end) const;
  [[nodiscard]] SimTime interval() const { return interval_; }

  /// The underlying timelines (telemetry::BucketSeries since the goodput
  /// timeline migrated onto the telemetry metric types; the accessors above
  /// are shims over these).
  [[nodiscard]] const telemetry::BucketSeries& completion_series() const {
    return completions_;
  }
  [[nodiscard]] const telemetry::BucketSeries& failure_series() const {
    return failures_;
  }

 private:
  SimTime start_ = 0;
  SimTime interval_ = 0;
  telemetry::BucketSeries completions_;
  telemetry::BucketSeries failures_;
  std::uint64_t retries_ = 0;
  std::vector<SimTime> crash_at_;   ///< per node, -1 = none pending
  std::vector<SimTime> repair_at_;  ///< per node, -1 = none pending
  Accumulator detect_ms_;
  Accumulator readmit_ms_;
};

}  // namespace l2s::stats
