// Log-scale histogram for latency and size distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace l2s::stats {

/// Histogram with geometrically growing bucket boundaries:
/// [0, base), [base, base*growth), ... Values below zero are clamped to
/// the first bucket; values beyond the last boundary land in an overflow
/// bucket. Suited to quantities spanning several orders of magnitude.
class LogHistogram {
 public:
  LogHistogram(double base, double growth, std::size_t buckets);

  void add(double value);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  [[nodiscard]] double bucket_lower_bound(std::size_t i) const;
  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }

  /// Approximate quantile (q in [0,1]) using bucket lower bounds.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] std::size_t bucket_for(double value) const;

  double base_;
  double growth_;
  std::vector<std::uint64_t> counts_;  // last bucket = overflow
  std::uint64_t total_ = 0;
};

}  // namespace l2s::stats
