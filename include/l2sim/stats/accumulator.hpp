// Streaming mean/variance/min/max accumulator (Welford's algorithm).
#pragma once

#include <cstdint>

namespace l2s::stats {

class Accumulator {
 public:
  void add(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const Accumulator& other);

  void reset();

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace l2s::stats
