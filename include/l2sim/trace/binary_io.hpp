// Compact binary trace format (".l2st") for caching generated traces:
// paper-scale synthesis takes seconds, but re-reading a 3M-request trace
// from disk takes milliseconds. Layout (little-endian):
//
//   magic   "L2ST"            4 bytes
//   version u32               currently 1
//   name    u32 length + bytes
//   files   u64 count + u64 size per file
//   reqs    u64 count + { u32 file, u64 bytes } per request
#pragma once

#include <iosfwd>
#include <string>

#include "l2sim/trace/trace.hpp"

namespace l2s::trace {

inline constexpr std::uint32_t kBinaryTraceVersion = 1;

/// Serialize a trace. Throws l2s::Error on stream failure.
void write_binary(const Trace& trace, std::ostream& out);
void write_binary_file(const Trace& trace, const std::string& path);

/// Deserialize; validates magic, version and internal consistency.
[[nodiscard]] Trace read_binary(std::istream& in);
[[nodiscard]] Trace read_binary_file(const std::string& path);

}  // namespace l2s::trace
