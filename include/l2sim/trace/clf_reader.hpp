// Common Log Format reader. The paper drives its simulator with WWW server
// access logs (Calgary, ClarkNet, NASA, Rutgers); those logs are CLF:
//
//   host ident user [date] "METHOD /path HTTP/x.y" status bytes
//
// Following the paper we keep only complete, successful static GETs
// (status 200 with a positive byte count) and treat each distinct path as
// one file whose size is the largest byte count observed for it.
#pragma once

#include <iosfwd>
#include <string>

#include "l2sim/trace/trace.hpp"

namespace l2s::trace {

struct ClfParseStats {
  std::uint64_t lines = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_malformed = 0;
  std::uint64_t rejected_status = 0;
  std::uint64_t rejected_method = 0;
};

/// Parse an entire CLF stream into a trace named `name`.
[[nodiscard]] Trace read_clf(std::istream& in, const std::string& name,
                             ClfParseStats* stats = nullptr);

/// Parse one CLF line; returns true and fills path/status/bytes on success.
[[nodiscard]] bool parse_clf_line(const std::string& line, std::string& method,
                                  std::string& path, int& status, std::uint64_t& bytes);

}  // namespace l2s::trace
