// Trace characterization: computes the Table 2 statistics from a trace —
// file count, average file size, request count, average request size, and
// the fitted Zipf exponent alpha — plus the working-set size.
#pragma once

#include <cstdint>

#include "l2sim/model/trace_model.hpp"
#include "l2sim/trace/trace.hpp"

namespace l2s::trace {

struct TraceCharacteristics {
  std::uint64_t files = 0;
  double avg_file_kb = 0.0;
  std::uint64_t requests = 0;
  double avg_request_kb = 0.0;
  double alpha = 0.0;           ///< fitted Zipf exponent
  Bytes working_set_bytes = 0;  ///< sum of distinct file sizes

  /// Convert to the model's workload summary.
  [[nodiscard]] model::WorkloadStats to_workload_stats() const;
};

/// Characterize a trace. Alpha is the maximum-likelihood fit (see
/// fit_zipf_alpha_mle below).
[[nodiscard]] TraceCharacteristics characterize(const Trace& trace);

/// Fit alpha alone from per-file request counts (log-log regression over
/// the repeated-rank region).
[[nodiscard]] double fit_zipf_alpha(const std::vector<std::uint64_t>& frequencies);

/// Maximum-likelihood alpha under the finite Zipf model
/// P(rank r) = r^-alpha / H_F(alpha): maximizes
///   L(alpha) = -alpha * sum_r c_r ln r - R ln H_F(alpha)
/// by golden-section search. Less biased than the regression fit when the
/// tail is heavy with singletons.
[[nodiscard]] double fit_zipf_alpha_mle(const std::vector<std::uint64_t>& frequencies);

}  // namespace l2s::trace
