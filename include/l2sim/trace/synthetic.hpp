// Synthetic trace generation calibrated to Table 2 of the paper.
//
// The four real access logs (Calgary, ClarkNet, NASA, Rutgers) are not
// redistributable, so we synthesize traces that reproduce the statistics
// the paper reports and that drive every code path the real logs would:
//
//   * `files` distinct files whose sizes follow a lognormal distribution
//     with the trace's average file size (heavy-tailed, as observed by
//     Arlitt & Williamson for WWW workloads);
//   * request popularity is Zipf-like with the trace's fitted alpha;
//   * the average *requested* size is matched separately from the average
//     *file* size by tuning the correlation between popularity rank and
//     file size with popularity-weighted greedy swaps (in real traces the
//     popular files tend to be smaller, e.g. Calgary: 42.9 KB average file
//     vs 19.7 KB average request).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "l2sim/trace/trace.hpp"

namespace l2s::trace {

struct SyntheticSpec {
  std::string name;
  std::uint64_t files = 1000;
  double avg_file_kb = 32.0;
  std::uint64_t requests = 100000;
  double avg_request_kb = 16.0;
  double alpha = 1.0;
  double size_sigma = 1.0;  ///< sigma of the underlying normal (lognormal spread)
  std::uint64_t seed = 42;

  /// Optional class-based size model (SPECweb-style). When non-empty it
  /// replaces the lognormal size draw: each file joins a class with
  /// probability `weight` (normalized) and draws its size log-uniformly in
  /// [min_kb, max_kb]. avg_file_kb / avg_request_kb are then emergent and
  /// the request-mean tuning is skipped.
  struct SizeClass {
    double weight;
    double min_kb;
    double max_kb;
  };
  std::vector<SizeClass> size_classes;

  /// Probability that a request repeats a recently requested file instead
  /// of drawing fresh from the Zipf distribution. Real WWW logs exhibit
  /// strong temporal correlation beyond pure popularity (the paper's
  /// traces produce 9-28% miss rates on a sequential 32 MB LRU server,
  /// which IID Zipf sampling cannot reach for the larger working sets);
  /// repeats draw a geometric depth into an LRU stack of recent files.
  double temporal_locality = 0.0;
  double temporal_mean_depth = 48.0;  ///< mean LRU-stack depth of repeats

  void validate() const;
};

/// Generate a trace matching the spec. Deterministic given the seed.
[[nodiscard]] Trace generate(const SyntheticSpec& spec);

/// The paper's four traces (Table 2), calibrated specs.
[[nodiscard]] std::vector<SyntheticSpec> paper_trace_specs();

/// SPECweb99-style static workload: four file classes mixed
/// 35% (0.1-1 KB) / 50% (1-10 KB) / 14% (10-100 KB) / 1% (100 KB-1 MB).
[[nodiscard]] SyntheticSpec specweb99_spec(std::uint64_t files, std::uint64_t requests,
                                           std::uint64_t seed = 99);

/// Look up one of the paper traces by (case-insensitive) name.
[[nodiscard]] SyntheticSpec paper_trace_spec(const std::string& name);

}  // namespace l2s::trace
