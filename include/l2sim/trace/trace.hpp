// A request trace: the file set plus the ordered sequence of requests that
// drive the simulator. Timing information is deliberately absent — the
// paper "disregarded the timing information in the traces and scheduled new
// requests as soon as the router and network interface buffers would accept
// them" to measure maximum throughput.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "l2sim/storage/file_set.hpp"

namespace l2s::trace {

using storage::FileId;

struct Request {
  FileId file;
  /// Bytes transferred by this request (== file size for complete GETs).
  Bytes bytes;
};

class Trace {
 public:
  Trace() = default;
  Trace(std::string name, storage::FileSet files, std::vector<Request> requests);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const storage::FileSet& files() const { return files_; }
  [[nodiscard]] const std::vector<Request>& requests() const { return requests_; }

  [[nodiscard]] std::uint64_t request_count() const { return requests_.size(); }
  [[nodiscard]] double avg_request_kb() const;
  [[nodiscard]] Bytes total_request_bytes() const { return request_bytes_; }

  /// A copy truncated to the first `n` requests (bench scaling).
  [[nodiscard]] Trace truncated(std::uint64_t n) const;

 private:
  std::string name_;
  storage::FileSet files_;
  std::vector<Request> requests_;
  Bytes request_bytes_ = 0;
};

}  // namespace l2s::trace
