#include "l2sim/common/rng.hpp"

#include <cmath>

#include "l2sim/common/error.hpp"

namespace l2s {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  L2S_REQUIRE(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::next_exponential(double rate) {
  L2S_REQUIRE(rate > 0.0);
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -std::log(u) / rate;
}

double Rng::next_normal() {
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::next_lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * next_normal());
}

double Rng::next_bounded_pareto(double alpha, double lo, double hi) {
  L2S_REQUIRE(alpha > 0.0 && lo > 0.0 && hi > lo);
  const double u = next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace l2s
