#include "l2sim/common/env.hpp"

#include <cstdlib>
#include <string>
#include <thread>

#include "l2sim/common/error.hpp"

namespace l2s {

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw) throw_error(std::string(name) + " is not a number: " + raw);
  return v;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw) throw_error(std::string(name) + " is not an integer: " + raw);
  return v;
}

unsigned thread_budget() {
  const std::int64_t v = env_int("L2SIM_THREADS", 0);
  if (v < 0) throw_error("L2SIM_THREADS must be >= 0 (0 = auto)");
  if (v > 0) return static_cast<unsigned>(v);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

double bench_scale() {
  const double s = env_double("L2SIM_SCALE", 0.1);
  if (s <= 0.0 || s > 1.0) throw_error("L2SIM_SCALE must be in (0, 1]");
  return s;
}

}  // namespace l2s
