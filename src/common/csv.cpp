#include "l2sim/common/csv.hpp"

#include <cstdlib>
#include <string_view>

#include "l2sim/common/error.hpp"

namespace l2s {

CsvWriter::CsvWriter() = default;

CsvWriter::CsvWriter(const std::string& dir, const std::string& name,
                     std::vector<std::string> header)
    : columns_(header.size()) {
  if (dir.empty()) return;
  out_.emplace(dir + "/" + name + ".csv");
  if (!*out_) throw_error("cannot open CSV output in " + dir);
  for (std::size_t c = 0; c < header.size(); ++c) {
    *out_ << header[c];
    *out_ << (c + 1 < header.size() ? ',' : '\n');
  }
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (!out_) return;
  L2S_REQUIRE(cells.size() == columns_);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    *out_ << cells[c];
    *out_ << (c + 1 < cells.size() ? ',' : '\n');
  }
}

std::string csv_dir_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--csv=", 0) == 0) return std::string(arg.substr(6));
  }
  if (const char* env = std::getenv("L2SIM_CSV_DIR")) return env;
  return {};
}

}  // namespace l2s
