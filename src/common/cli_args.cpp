#include "l2sim/common/cli_args.hpp"

#include <cstdlib>

namespace l2s {

CliArgs::CliArgs(int argc, const char* const* argv, int start) {
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";
    }
  }
}

bool CliArgs::has(const std::string& key) const { return values_.contains(key); }

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

int CliArgs::get_int(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atoi(it->second.c_str());
}

}  // namespace l2s
