#include "l2sim/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "l2sim/common/error.hpp"

namespace l2s {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  L2S_REQUIRE(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  L2S_REQUIRE(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

TextTable& TextTable::cell(std::string value) {
  pending_.push_back(std::move(value));
  return *this;
}

TextTable& TextTable::cell(double value, int precision) {
  pending_.push_back(format_double(value, precision));
  return *this;
}

TextTable& TextTable::cell(long long value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

void TextTable::end_row() {
  add_row(std::move(pending_));
  pending_.clear();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c], '-');
    if (c + 1 < header_.size()) os << "  ";
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

}  // namespace l2s
