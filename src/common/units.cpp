#include "l2sim/common/units.hpp"

namespace l2s {

double simtime_ms(SimTime t) { return static_cast<double>(t) * 1e-6; }

}  // namespace l2s
