#include "l2sim/common/error.hpp"

#include <sstream>

namespace l2s {

void throw_error(const std::string& message) { throw Error(message); }

void require_fail(const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << "l2sim invariant violated: " << expr << " at " << file << ":" << line;
  throw Error(os.str());
}

}  // namespace l2s
