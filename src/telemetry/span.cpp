#include "l2sim/telemetry/span.hpp"

#include <stdexcept>

namespace l2s::telemetry {
namespace {

/// splitmix64 finalizer: a cheap, high-quality bijective mixer. Sampling on
/// mix(id) % N instead of id % N keeps 1-in-N sampling uniform even though
/// request ids are consecutive integers.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool operator==(const Span& a, const Span& b) {
  return a.request_id == b.request_id && a.entry_node == b.entry_node &&
         a.service_node == b.service_node && a.verdict == b.verdict &&
         a.cache_hit == b.cache_hit && a.attempt == b.attempt &&
         a.retries_used == b.retries_used && a.fault_epoch == b.fault_epoch &&
         a.first_arrival == b.first_arrival && a.arrival == b.arrival &&
         a.decided == b.decided && a.service == b.service &&
         a.disk_done == b.disk_done && a.completion == b.completion;
}

SpanRecorder::SpanRecorder(std::size_t capacity, std::uint64_t sample_every)
    : ring_(capacity), sample_every_(sample_every) {
  if (capacity == 0) throw std::invalid_argument("SpanRecorder: capacity must be > 0");
  if (sample_every == 0) {
    throw std::invalid_argument("SpanRecorder: sample_every must be > 0");
  }
}

bool SpanRecorder::sampled(std::uint64_t request_id) const {
  if (sample_every_ == 1) return true;
  return mix64(request_id) % sample_every_ == 0;
}

void SpanRecorder::record(const Span& span) {
  ring_[next_] = span;
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++recorded_;
}

std::vector<Span> SpanRecorder::chronological() const {
  std::vector<Span> out;
  out.reserve(size_);
  const std::size_t oldest = (size_ < ring_.size()) ? 0 : next_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(oldest + i) % ring_.size()]);
  }
  return out;
}

void SpanRecorder::reset() {
  next_ = 0;
  size_ = 0;
  recorded_ = 0;
}

}  // namespace l2s::telemetry
