#include "l2sim/telemetry/exporters.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "l2sim/common/error.hpp"
#include "l2sim/common/table.hpp"

namespace l2s::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Small formatting helpers.

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0') << static_cast<int>(c);
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

[[nodiscard]] std::string labels_to_string(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ';';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

/// Chrome trace timestamps are microseconds; SimTime is nanoseconds.
[[nodiscard]] double to_us(SimTime t) { return static_cast<double>(t) / 1000.0; }

/// The node a span's back half ran on (entry node when it died pre-dispatch).
[[nodiscard]] int back_node(const Span& s) {
  return s.service_node >= 0 ? s.service_node : s.entry_node;
}

/// Node id of a per-node metric ("node" label), or -1.
[[nodiscard]] int node_of(const Labels& labels) {
  for (const auto& [k, v] : labels) {
    if (k == "node") return std::stoi(v);
  }
  return -1;
}

/// DES shard id of a per-shard metric ("shard" label), or -1.
[[nodiscard]] int shard_of(const Labels& labels) {
  for (const auto& [k, v] : labels) {
    if (k == "shard") return std::stoi(v);
  }
  return -1;
}

/// Shard tracks live on their own trace processes, well clear of node pids.
constexpr int kShardPidBase = 10000;

/// Quantile over snapshotted histogram buckets (same walk as
/// Histogram::quantile, reconstructed from the value-type copy).
[[nodiscard]] double snapshot_quantile(const MetricSnapshot& m, double q) {
  if (m.kind != MetricKind::kHistogram || m.count == 0) return 0.0;
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(m.count - 1));
  std::uint64_t seen = 0;
  double lower = 0.0;
  double next = m.histogram_params.base;
  for (std::size_t i = 0; i < m.histogram_buckets.size(); ++i) {
    seen += m.histogram_buckets[i];
    if (seen > target) return lower;
    lower = next;
    next *= m.histogram_params.growth;
  }
  return lower;
}

class JsonEventWriter {
 public:
  explicit JsonEventWriter(std::ostream& out) : out_(out) {}

  /// Start the next event object, handling commas between events.
  std::ostream& next() {
    if (!first_) out_ << ",\n";
    first_ = false;
    return out_;
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

void write_span_slice(JsonEventWriter& w, const char* name, int pid, int tid,
                      SimTime start, SimTime end, const Span& s) {
  if (pid < 0 || end < start) return;
  w.next() << "{\"ph\":\"X\",\"name\":\"" << name << "\",\"pid\":" << pid
           << ",\"tid\":" << tid << ",\"ts\":" << to_us(start)
           << ",\"dur\":" << to_us(end - start) << ",\"args\":{\"request\":" << s.request_id
           << ",\"verdict\":\"" << span_verdict_name(s.verdict)
           << "\",\"attempt\":" << s.attempt << ",\"fault_epoch\":" << s.fault_epoch << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const Snapshot& snapshot,
                        const std::vector<std::string>& extra_events) {
  out << std::setprecision(15);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  JsonEventWriter w(out);

  // One trace process per node, one thread per resource stage. Track ids
  // order the resources the way a request traverses them.
  static constexpr const char* kTracks[] = {"entry (cpu)", "hand-off", "storage",
                                            "reply (nic)"};
  for (int n = 0; n < snapshot.nodes; ++n) {
    w.next() << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << n
             << ",\"args\":{\"name\":\"node" << n << "\"}}";
    for (int t = 0; t < 4; ++t) {
      w.next() << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << n << ",\"tid\":" << t
               << ",\"args\":{\"name\":\"" << kTracks[t] << "\"}}";
    }
  }

  // Name a process for every DES shard that has per-shard series, so the
  // introspection timelines render as labeled "shard N" tracks.
  int max_shard = -1;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.kind == MetricKind::kSampleSeries) max_shard = std::max(max_shard, shard_of(m.labels));
  }
  for (int s = 0; s <= max_shard; ++s) {
    w.next() << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << (kShardPidBase + s)
             << ",\"args\":{\"name\":\"shard " << s << "\"}}";
  }

  for (const Span& s : snapshot.spans) {
    // Slices degrade gracefully for spans that died mid-lifecycle: a stage
    // whose timestamps were never set is skipped.
    if (s.decided >= s.arrival && s.decided > 0) {
      write_span_slice(w, "entry", s.entry_node, 0, s.arrival, s.decided, s);
    }
    if (s.service > s.decided && s.decided > 0 &&
        (s.verdict == SpanVerdict::kForwarded || s.service_node != s.entry_node)) {
      write_span_slice(w, "hand-off", s.entry_node, 1, s.decided, s.service, s);
    }
    if (s.disk_done >= s.service && s.service > 0) {
      write_span_slice(w, s.cache_hit ? "cache" : "disk", back_node(s), 2, s.service,
                       s.disk_done, s);
    }
    if (!s.failed() && s.completion >= s.disk_done && s.disk_done > 0) {
      write_span_slice(w, "reply", back_node(s), 3, s.disk_done, s.completion, s);
    }
    if (s.failed() && s.entry_node >= 0) {
      w.next() << "{\"ph\":\"i\",\"s\":\"p\",\"name\":\"" << span_verdict_name(s.verdict)
               << "\",\"pid\":" << s.entry_node << ",\"tid\":0,\"ts\":" << to_us(s.completion)
               << ",\"args\":{\"request\":" << s.request_id << "}}";
    }
  }

  for (const FaultEvent& ev : snapshot.fault_events) {
    w.next() << "{\"ph\":\"i\",\"s\":\"g\",\"name\":\"" << fault_event_name(ev.kind)
             << " node" << ev.node << "\",\"pid\":" << (ev.node >= 0 ? ev.node : 0)
             << ",\"tid\":0,\"ts\":" << to_us(ev.at) << "}";
  }

  // Probe series become counter tracks on their node's (or shard's) process.
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.kind != MetricKind::kSampleSeries) continue;
    const int node = node_of(m.labels);
    const int shard = shard_of(m.labels);
    const int pid = shard >= 0 ? kShardPidBase + shard : (node >= 0 ? node : 0);
    const std::string name = json_escape(m.name);
    for (const auto& [t, v] : m.samples) {
      w.next() << "{\"ph\":\"C\",\"name\":\"" << name << "\",\"pid\":" << pid
               << ",\"ts\":" << to_us(t) << ",\"args\":{\"value\":" << v << "}}";
    }
  }

  for (const std::string& ev : extra_events) w.next() << ev;

  out << "\n]}\n";
}

void write_chrome_trace(std::ostream& out, const Snapshot& snapshot) {
  write_chrome_trace(out, snapshot, {});
}

void write_metrics_csv(std::ostream& out, const Snapshot& snapshot) {
  out << "name,labels,kind,count,value,min,max,p50,p95,p99\n";
  out << std::setprecision(15);
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.kind == MetricKind::kBucketSeries || m.kind == MetricKind::kSampleSeries) continue;
    out << m.name << ',' << labels_to_string(m.labels) << ',' << metric_kind_name(m.kind)
        << ',' << m.count << ',';
    switch (m.kind) {
      case MetricKind::kCounter:
        out << m.count << ",,,,,";
        break;
      case MetricKind::kGauge:
        out << m.value << ',' << m.min << ',' << m.max << ",,,";
        break;
      case MetricKind::kHistogram:
        out << ",,," << snapshot_quantile(m, 0.50) << ',' << snapshot_quantile(m, 0.95)
            << ',' << snapshot_quantile(m, 0.99);
        break;
      default:
        break;
    }
    out << '\n';
  }
}

void write_timeseries_csv(std::ostream& out, const Snapshot& snapshot) {
  out << "name,labels,time_s,value\n";
  out << std::setprecision(15);
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.kind == MetricKind::kBucketSeries) {
      for (std::size_t i = 0; i < m.series_buckets.size(); ++i) {
        const SimTime t = m.series_start + static_cast<SimTime>(i) * m.series_interval;
        out << m.name << ',' << labels_to_string(m.labels) << ','
            << simtime_to_seconds(t) << ',' << m.series_buckets[i] << '\n';
      }
    } else if (m.kind == MetricKind::kSampleSeries) {
      for (const auto& [t, v] : m.samples) {
        out << m.name << ',' << labels_to_string(m.labels) << ',' << simtime_to_seconds(t)
            << ',' << v << '\n';
      }
    }
  }
}

void write_spans_csv(std::ostream& out, const Snapshot& snapshot) {
  out << "request_id,entry_node,service_node,verdict,cache_hit,attempt,retries_used,"
         "fault_epoch,arrival_s,entry_ms,forward_ms,disk_ms,reply_ms,total_ms\n";
  out << std::setprecision(15);
  for (const Span& s : snapshot.spans) {
    out << s.request_id << ',' << s.entry_node << ',' << s.service_node << ','
        << span_verdict_name(s.verdict) << ',' << (s.cache_hit ? 1 : 0) << ',' << s.attempt
        << ',' << s.retries_used << ',' << s.fault_epoch << ','
        << simtime_to_seconds(s.arrival) << ',' << s.entry_ms() << ',' << s.forward_ms()
        << ',' << s.disk_ms() << ',' << s.reply_ms() << ',' << s.total_ms() << '\n';
  }
}

void write_summary(std::ostream& out, const Snapshot& snapshot) {
  out << "telemetry summary (" << snapshot.nodes << " nodes)\n\n";

  TextTable counters({"Metric", "Value"});
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.kind != MetricKind::kCounter) continue;
    std::string name = m.name;
    if (!m.labels.empty()) name += " [" + labels_to_string(m.labels) + "]";
    counters.cell(std::move(name)).cell(static_cast<long long>(m.count)).end_row();
  }
  counters.print(out);
  out << '\n';

  if (const MetricSnapshot* h = snapshot.find("requests.response_ms"); h != nullptr) {
    TextTable latency({"Response time", "ms"});
    latency.cell("p50").cell(snapshot_quantile(*h, 0.50), 3).end_row();
    latency.cell("p95").cell(snapshot_quantile(*h, 0.95), 3).end_row();
    latency.cell("p99").cell(snapshot_quantile(*h, 0.99), 3).end_row();
    latency.print(out);
    out << '\n';
  }

  // Per-resource breakdown reconstructed from the sampled spans (the
  // paper-style view: where does a request's time go?).
  double entry = 0.0;
  double forward = 0.0;
  double disk = 0.0;
  double reply = 0.0;
  std::size_t completed = 0;
  for (const Span& s : snapshot.spans) {
    if (s.failed()) continue;
    entry += s.entry_ms();
    forward += s.forward_ms();
    disk += s.disk_ms();
    reply += s.reply_ms();
    ++completed;
  }
  if (completed > 0) {
    const auto n = static_cast<double>(completed);
    TextTable stages({"Stage", "Mean ms"});
    stages.cell("entry (cpu)").cell(entry / n, 4).end_row();
    stages.cell("hand-off").cell(forward / n, 4).end_row();
    stages.cell("storage").cell(disk / n, 4).end_row();
    stages.cell("reply (nic)").cell(reply / n, 4).end_row();
    stages.print(out);
    out << '\n';
  }

  out << "spans: kept " << snapshot.spans.size() << " of " << snapshot.spans_recorded
      << " recorded (1-in-" << snapshot.span_sample_every << " sampling, "
      << snapshot.spans_overwritten << " overwritten)\n";
  if (!snapshot.fault_events.empty()) {
    out << "fault events: " << snapshot.fault_events.size() << '\n';
  }
}

namespace {

template <typename Fn>
void export_to(const std::string& path, Fn writer) {
  std::ofstream out(path);
  if (!out) throw_error("telemetry: cannot open output file: " + path);
  writer(out);
}

}  // namespace

void export_chrome_trace(const std::string& path, const Snapshot& snapshot) {
  export_to(path, [&](std::ostream& out) { write_chrome_trace(out, snapshot); });
}

void export_metrics_csv(const std::string& path, const Snapshot& snapshot) {
  export_to(path, [&](std::ostream& out) { write_metrics_csv(out, snapshot); });
}

void export_timeseries_csv(const std::string& path, const Snapshot& snapshot) {
  export_to(path, [&](std::ostream& out) { write_timeseries_csv(out, snapshot); });
}

void export_spans_csv(const std::string& path, const Snapshot& snapshot) {
  export_to(path, [&](std::ostream& out) { write_spans_csv(out, snapshot); });
}

}  // namespace l2s::telemetry
