#include "l2sim/telemetry/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace l2s::telemetry {

Labels canonical_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string metric_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  if (!labels.empty()) {
    key += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) key += ',';
      first = false;
      key += k;
      key += '=';
      key += v;
    }
    key += '}';
  }
  return key;
}

template <typename T>
T& Registry::get_or_register(const std::string& name, const Labels& labels,
                             MetricKind kind, std::deque<T>& pool, T initial) {
  Labels canonical = canonical_labels(labels);
  const std::string key = metric_key(name, canonical);
  if (auto it = by_key_.find(key); it != by_key_.end()) {
    const Entry& entry = order_[it->second];
    if (entry.kind != kind) {
      throw std::invalid_argument("Registry: metric '" + key + "' already registered as " +
                                  metric_kind_name(entry.kind));
    }
    return pool[entry.index];
  }
  pool.push_back(std::move(initial));
  by_key_.emplace(key, order_.size());
  order_.push_back(Entry{name, std::move(canonical), kind, pool.size() - 1});
  return pool.back();
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  return get_or_register(name, labels, MetricKind::kCounter, counters_, Counter{});
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  return get_or_register(name, labels, MetricKind::kGauge, gauges_, Gauge{});
}

Histogram& Registry::histogram(const std::string& name, const Labels& labels,
                               HistogramParams params) {
  return get_or_register(name, labels, MetricKind::kHistogram, histograms_,
                         Histogram{params});
}

BucketSeries& Registry::bucket_series(const std::string& name, const Labels& labels) {
  return get_or_register(name, labels, MetricKind::kBucketSeries, bucket_series_,
                         BucketSeries{});
}

SampleSeries& Registry::sample_series(const std::string& name, const Labels& labels) {
  return get_or_register(name, labels, MetricKind::kSampleSeries, sample_series_,
                         SampleSeries{});
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.metrics.reserve(order_.size());
  for (const Entry& entry : order_) {
    MetricSnapshot m;
    m.name = entry.name;
    m.labels = entry.labels;
    m.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        m.count = counters_[entry.index].value();
        m.value = static_cast<double>(m.count);
        break;
      case MetricKind::kGauge: {
        const Gauge& g = gauges_[entry.index];
        m.count = g.count();
        m.value = g.value();
        m.min = g.min();
        m.max = g.max();
        break;
      }
      case MetricKind::kHistogram: {
        const Histogram& h = histograms_[entry.index];
        m.count = h.count();
        m.histogram_params = h.params();
        m.histogram_buckets = h.buckets();
        break;
      }
      case MetricKind::kBucketSeries: {
        const BucketSeries& s = bucket_series_[entry.index];
        m.series_start = s.start();
        m.series_interval = s.interval();
        m.series_buckets = s.buckets();
        m.count = s.buckets().size();
        break;
      }
      case MetricKind::kSampleSeries: {
        const SampleSeries& s = sample_series_[entry.index];
        m.samples = s.points();
        m.count = s.points().size();
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

void Registry::reset() {
  for (auto& c : counters_) c.reset();
  for (auto& g : gauges_) g.reset();
  for (auto& h : histograms_) h.reset();
  for (auto& s : bucket_series_) s.reset();
  for (auto& s : sample_series_) s.reset();
}

const MetricSnapshot* Snapshot::find(const std::string& name, const Labels& labels) const {
  const Labels canonical = canonical_labels(labels);
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name && m.labels == canonical) return &m;
  }
  return nullptr;
}

void Snapshot::merge(const Snapshot& other) {
  nodes = std::max(nodes, other.nodes);
  span_sample_every = std::max(span_sample_every, other.span_sample_every);
  spans_recorded += other.spans_recorded;
  spans_overwritten += other.spans_overwritten;
  spans.insert(spans.end(), other.spans.begin(), other.spans.end());
  fault_events.insert(fault_events.end(), other.fault_events.begin(),
                      other.fault_events.end());

  for (const MetricSnapshot& theirs : other.metrics) {
    MetricSnapshot* mine = nullptr;
    for (MetricSnapshot& m : metrics) {
      if (m.name == theirs.name && m.labels == theirs.labels) {
        mine = &m;
        break;
      }
    }
    if (mine == nullptr) {
      metrics.push_back(theirs);
      continue;
    }
    if (mine->kind != theirs.kind) {
      throw std::invalid_argument("Snapshot::merge: kind mismatch for metric '" +
                                  metric_key(theirs.name, theirs.labels) + "'");
    }
    switch (theirs.kind) {
      case MetricKind::kCounter:
        mine->count += theirs.count;
        mine->value = static_cast<double>(mine->count);
        break;
      case MetricKind::kGauge:
        if (theirs.count > 0) {
          if (mine->count == 0) {
            mine->min = theirs.min;
            mine->max = theirs.max;
            mine->value = theirs.value;
          } else {
            mine->min = std::min(mine->min, theirs.min);
            mine->max = std::max(mine->max, theirs.max);
            mine->value = std::max(mine->value, theirs.value);
          }
          mine->count += theirs.count;
        }
        break;
      case MetricKind::kHistogram: {
        if (mine->histogram_buckets.size() != theirs.histogram_buckets.size()) {
          throw std::invalid_argument("Snapshot::merge: histogram shape mismatch for '" +
                                      theirs.name + "'");
        }
        for (std::size_t i = 0; i < mine->histogram_buckets.size(); ++i) {
          mine->histogram_buckets[i] += theirs.histogram_buckets[i];
        }
        mine->count += theirs.count;
        break;
      }
      case MetricKind::kBucketSeries: {
        if (mine->series_interval == 0) {
          mine->series_start = theirs.series_start;
          mine->series_interval = theirs.series_interval;
        }
        if (theirs.series_buckets.size() > mine->series_buckets.size()) {
          mine->series_buckets.resize(theirs.series_buckets.size(), 0.0);
        }
        for (std::size_t i = 0; i < theirs.series_buckets.size(); ++i) {
          mine->series_buckets[i] += theirs.series_buckets[i];
        }
        mine->count = mine->series_buckets.size();
        break;
      }
      case MetricKind::kSampleSeries:
        mine->samples.insert(mine->samples.end(), theirs.samples.begin(),
                             theirs.samples.end());
        mine->count = mine->samples.size();
        break;
    }
  }
}

}  // namespace l2s::telemetry
