#include "l2sim/telemetry/config.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::telemetry {

void TelemetryConfig::validate() const {
  if (span_capacity == 0) throw_error("telemetry: span_capacity must be > 0");
}

}  // namespace l2s::telemetry
