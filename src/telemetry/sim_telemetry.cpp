#include "l2sim/telemetry/sim_telemetry.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::telemetry {

SimTelemetry::SimTelemetry(const core::engine::EngineContext& ctx,
                           const TelemetryConfig& config)
    : ctx_(ctx),
      config_(config),
      // sample_every 0 means "no spans": keep the recorder constructible and
      // gate recording on config_.span_sample_every instead.
      spans_(config.span_capacity, config.span_sample_every == 0 ? 1 : config.span_sample_every) {
  config_.validate();
  if (config_.probe) {
    probe_ = std::make_unique<TimelineProbe>(registry_, ctx_.cfg().nodes);
  }
  completed_ = &registry_.counter("requests.completed");
  completed_hits_ = &registry_.counter("requests.completed", {{"cache", "hit"}});
  completed_forwarded_ = &registry_.counter("requests.completed", {{"path", "forwarded"}});
  failed_deadline_ = &registry_.counter("requests.failed", {{"reason", "deadline"}});
  failed_retries_ = &registry_.counter("requests.failed", {{"reason", "retries"}});
  failed_rejected_ = &registry_.counter("requests.failed", {{"reason", "rejected"}});
  failed_shed_ = &registry_.counter("requests.failed", {{"reason", "shed"}});
  retries_ = &registry_.counter("requests.retries_scheduled");
  hedges_ = &registry_.counter("requests.hedges");
  brownout_transitions_ = &registry_.counter("overload.brownout_transitions");
  forwards_ = &registry_.counter("cluster.forwards");
  migrations_ = &registry_.counter("cluster.migrations");
  remote_fetches_ = &registry_.counter("cluster.remote_fetches");
  response_ms_ = &registry_.histogram("requests.response_ms");
  goodput_completed_ = &registry_.bucket_series("goodput.completed");
  goodput_failed_ = &registry_.bucket_series("goodput.failed");
}

void SimTelemetry::begin_measurement(SimTime measure_start) {
  const SimTime interval = seconds_to_simtime(ctx_.cfg().goodput_interval_seconds);
  if (interval > 0) {
    goodput_completed_->begin(measure_start, interval);
    goodput_failed_->begin(measure_start, interval);
  }
  if (probe_) probe_->begin(measure_start);
}

void SimTelemetry::reset() {
  registry_.reset();
  spans_.reset();
  fault_events_.clear();
  fault_epoch_ = 0;
  if (probe_) probe_->reset();
}

Snapshot SimTelemetry::snapshot() const {
  Snapshot snap = registry_.snapshot();
  snap.nodes = ctx_.cfg().nodes;
  snap.spans = spans_.chronological();
  snap.fault_events = fault_events_;
  snap.span_sample_every = config_.span_sample_every;
  snap.spans_recorded = spans_.recorded();
  snap.spans_overwritten = spans_.overwritten();
  return snap;
}

void SimTelemetry::on_request_completed(const cluster::Connection& conn, SimTime now) {
  completed_->add();
  if (conn.cache_hit) completed_hits_->add();
  if (conn.forwarded()) completed_forwarded_->add();
  response_ms_->add(simtime_to_seconds(now - conn.first_arrival) * 1e3);
  goodput_completed_->bump(now);

  if (config_.span_sample_every == 0 || !spans_.sampled(conn.id)) return;
  Span span;
  span.request_id = conn.id;
  span.entry_node = conn.entry_node;
  span.service_node = conn.service_node;
  span.verdict = conn.forwarded() ? SpanVerdict::kForwarded : SpanVerdict::kLocal;
  span.cache_hit = conn.cache_hit;
  span.attempt = conn.attempt;
  span.retries_used = conn.retries_used;
  span.fault_epoch = fault_epoch_;
  span.first_arrival = conn.first_arrival;
  span.arrival = conn.arrival;
  span.decided = conn.t_decided;
  span.service = conn.t_service;
  span.disk_done = conn.t_disk_done;
  span.completion = now;
  spans_.record(span);
}

void SimTelemetry::on_request_failed(const cluster::Connection* conn,
                                     core::engine::FailureKind kind, SimTime now) {
  switch (kind) {
    case core::engine::FailureKind::kDeadline: failed_deadline_->add(); break;
    case core::engine::FailureKind::kRetriesExhausted: failed_retries_->add(); break;
    case core::engine::FailureKind::kRejected: failed_rejected_->add(); break;
    case core::engine::FailureKind::kShed: failed_shed_->add(); break;
  }
  goodput_failed_->bump(now);

  // Admission rejects and sheds never materialize a connection
  // (conn == nullptr), so those requests leave counters but no span.
  if (conn == nullptr) return;
  if (config_.span_sample_every == 0 || !spans_.sampled(conn->id)) return;
  Span span;
  span.request_id = conn->id;
  span.entry_node = conn->entry_node;
  span.service_node = conn->service_node;
  span.verdict = kind == core::engine::FailureKind::kDeadline
                     ? SpanVerdict::kDeadline
                     : SpanVerdict::kRetriesExhausted;
  span.cache_hit = conn->cache_hit;
  span.attempt = conn->attempt;
  span.retries_used = conn->retries_used;
  span.fault_epoch = fault_epoch_;
  span.first_arrival = conn->first_arrival;
  span.arrival = conn->arrival;
  span.decided = conn->t_decided;
  span.service = conn->t_service;
  span.disk_done = conn->t_disk_done;
  span.completion = now;
  spans_.record(span);
}

void SimTelemetry::on_decision(const obs::DecisionRecord& record) {
  // Per-cause overload accounting: which shedder said no, which direction
  // the brownout moved, which budget spend was denied. Lazy registration is
  // fine — the decision stream is deterministic, so registration order is
  // too — and reset() keeps the registrations across the warm-up boundary.
  switch (record.kind) {
    case obs::DecisionKind::kShed:
      registry_.counter("overload.shed", {{"cause", std::string(to_string(record.cause))}})
          .add();
      break;
    case obs::DecisionKind::kBrownout:
      registry_
          .counter("overload.brownout", {{"level", std::to_string(record.detail)},
                                         {"edge", record.cause ==
                                                          obs::DecisionCause::kBrownoutRaise
                                                      ? "raise"
                                                      : "ease"}})
          .add();
      break;
    case obs::DecisionKind::kBudgetDeny:
      registry_
          .counter("overload.retry_budget_denied",
                   {{"op", record.cause == obs::DecisionCause::kBudgetDeniedHedge
                               ? "hedge"
                               : "retry"}})
          .add();
      break;
    default:
      break;  // other kinds are covered by the dedicated lifecycle hooks
  }
}

void SimTelemetry::on_retry_scheduled(SimTime /*now*/) { retries_->add(); }

void SimTelemetry::on_hedge(SimTime /*now*/) { hedges_->add(); }

void SimTelemetry::on_brownout(int /*level*/, SimTime /*now*/) {
  brownout_transitions_->add();
}

void SimTelemetry::on_forward() { forwards_->add(); }

void SimTelemetry::on_migration() { migrations_->add(); }

void SimTelemetry::on_remote_fetch() { remote_fetches_->add(); }

void SimTelemetry::on_load_sample(SimTime now) {
  if (!probe_) return;
  ClusterSample sample;
  sample.now = now;
  sample.nodes.reserve(ctx_.nodes->size());
  for (const auto& node : *ctx_.nodes) {
    ClusterSample::Node ns;
    ns.open_connections = node->open_connections();
    ns.cpu_queue = node->cpu().queue_length();
    ns.disk_queue = node->disk().resource().queue_length();
    ns.nic_tx_queue = node->nic().tx().queue_length();
    ns.cache_used = node->file_cache().used();
    ns.cache_capacity = node->file_cache().capacity();
    ns.cpu_busy = node->cpu().busy_time();
    sample.nodes.push_back(ns);
  }
  sample.via_in_flight = ctx_.via->in_flight();
  probe_->record(sample);
}

void SimTelemetry::on_node_crashed(int node, SimTime at) {
  record_fault(FaultEvent::Kind::kCrash, node, at);
}

void SimTelemetry::on_node_repaired(int node, SimTime at) {
  record_fault(FaultEvent::Kind::kRepair, node, at);
}

void SimTelemetry::on_node_detected(int node, SimTime at) {
  record_fault(FaultEvent::Kind::kDetected, node, at);
}

void SimTelemetry::on_node_readmitted(int node, SimTime at) {
  record_fault(FaultEvent::Kind::kReadmitted, node, at);
}

void SimTelemetry::record_fault(FaultEvent::Kind kind, int node, SimTime at) {
  ++fault_epoch_;
  FaultEvent ev;
  ev.kind = kind;
  ev.node = node;
  ev.at = at;
  fault_events_.push_back(ev);
}

}  // namespace l2s::telemetry
