#include "l2sim/telemetry/probe.hpp"

#include <string>

namespace l2s::telemetry {
namespace {

[[nodiscard]] Labels node_label(int node) {
  return Labels{{"node", std::to_string(node)}};
}

}  // namespace

TimelineProbe::TimelineProbe(Registry& registry, int nodes)
    : registry_(registry), nodes_(nodes), last_busy_(static_cast<std::size_t>(nodes), 0) {
  open_connections_.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    const Labels labels = node_label(n);
    open_connections_.push_back(&registry_.sample_series("node.open_connections", labels));
    cpu_queue_.push_back(&registry_.sample_series("node.cpu_queue", labels));
    disk_queue_.push_back(&registry_.sample_series("node.disk_queue", labels));
    nic_tx_queue_.push_back(&registry_.sample_series("node.nic_tx_queue", labels));
    cache_used_.push_back(&registry_.sample_series("node.cache_used_bytes", labels));
    utilization_.push_back(&registry_.sample_series("node.cpu_utilization", labels));
    peak_queue_.push_back(&registry_.gauge("node.peak_cpu_queue", labels));
  }
  via_in_flight_ = &registry_.sample_series("via.in_flight");
}

void TimelineProbe::begin(SimTime start) {
  last_now_ = start;
  last_busy_.assign(last_busy_.size(), 0);
}

void TimelineProbe::record(const ClusterSample& sample) {
  const auto n = std::min(sample.nodes.size(), static_cast<std::size_t>(nodes_));
  const SimTime window = sample.now - last_now_;
  for (std::size_t i = 0; i < n; ++i) {
    const ClusterSample::Node& node = sample.nodes[i];
    open_connections_[i]->add(sample.now, static_cast<double>(node.open_connections));
    cpu_queue_[i]->add(sample.now, static_cast<double>(node.cpu_queue));
    disk_queue_[i]->add(sample.now, static_cast<double>(node.disk_queue));
    nic_tx_queue_[i]->add(sample.now, static_cast<double>(node.nic_tx_queue));
    cache_used_[i]->add(sample.now, static_cast<double>(node.cache_used));
    peak_queue_[i]->set(static_cast<double>(node.cpu_queue));

    // Differentiate cumulative busy time into per-window utilization.
    double util = 0.0;
    if (window > 0) {
      const SimTime busy_delta = node.cpu_busy - last_busy_[i];
      util = static_cast<double>(busy_delta) / static_cast<double>(window);
    }
    utilization_[i]->add(sample.now, util);
    last_busy_[i] = node.cpu_busy;
  }
  via_in_flight_->add(sample.now, static_cast<double>(sample.via_in_flight));
  last_now_ = sample.now;
}

void TimelineProbe::reset() {
  last_now_ = 0;
  last_busy_.assign(last_busy_.size(), 0);
}

}  // namespace l2s::telemetry
