#include "l2sim/telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace l2s::telemetry {

void Gauge::set(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  value_ = v;
  ++count_;
}

void Gauge::merge(const Gauge& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  value_ = std::max(value_, other.value_);
  count_ += other.count_;
}

void Gauge::reset() {
  value_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  count_ = 0;
}

Histogram::Histogram(HistogramParams params) : params_(params) {
  if (params_.buckets < 2) throw std::invalid_argument("Histogram: need >= 2 buckets");
  if (params_.base <= 0.0 || params_.growth <= 1.0) {
    throw std::invalid_argument("Histogram: base must be > 0 and growth > 1");
  }
  inv_log_growth_ = 1.0 / std::log(params_.growth);
  counts_.assign(params_.buckets, 0);
}

void Histogram::add(double value) {
  // Bucket 0 is [0, base); bucket k >= 1 is [base*g^(k-1), base*g^k); the
  // last bucket absorbs overflow. add() sits on the per-completion hot path
  // (telemetry_bench gates it), so the bucket index is one log, not a
  // multiply ladder over the bucket array.
  std::size_t i = 0;
  if (value >= params_.base) {
    const double x = std::log(value / params_.base) * inv_log_growth_;
    if (x >= static_cast<double>(counts_.size() - 2)) {
      i = counts_.size() - 1;
    } else {
      i = static_cast<std::size_t>(x) + 1;
    }
  }
  ++counts_[i];
  ++total_;
}

void Histogram::add_count(double value, std::uint64_t count) {
  if (count == 0) return;
  std::size_t i = 0;
  if (value >= params_.base) {
    const double x = std::log(value / params_.base) * inv_log_growth_;
    if (x >= static_cast<double>(counts_.size() - 2)) {
      i = counts_.size() - 1;
    } else {
      i = static_cast<std::size_t>(x) + 1;
    }
  }
  counts_[i] += count;
  total_ += count;
}

double Histogram::bucket_lower_bound(std::size_t i) const {
  if (i == 0) return 0.0;
  double bound = params_.base;
  for (std::size_t k = 1; k < i; ++k) bound *= params_.growth;
  return bound;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) return bucket_lower_bound(i);
  }
  return bucket_lower_bound(counts_.size() - 1);
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.params_.base != params_.base ||
      other.params_.growth != params_.growth) {
    throw std::invalid_argument("Histogram::merge: parameter mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

void Histogram::reset() {
  counts_.assign(counts_.size(), 0);
  total_ = 0;
}

void BucketSeries::begin(SimTime start, SimTime interval) {
  start_ = start;
  interval_ = interval;
  buckets_.clear();
}

void BucketSeries::bump(SimTime t, double delta) {
  // Same integer arithmetic stats::AvailabilityTracker has always used, so
  // the migrated goodput timeline stays bit-identical.
  if (interval_ <= 0 || t < start_) return;
  const auto idx = static_cast<std::size_t>((t - start_) / interval_);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0.0);
  buckets_[idx] += delta;
}

std::vector<double> BucketSeries::rate_per_second(SimTime end) const {
  std::vector<double> rates;
  if (interval_ <= 0 || end <= start_) return rates;
  // Cover [start, end) — and never drop a populated bucket: an event at
  // exactly `end` (a completion stamped at the final event time the caller
  // passes as `end`) lands in bucket floor((end-start)/interval), one past
  // the ceil() count, and used to vanish from the timeline.
  const auto n = static_cast<std::size_t>((end - start_ + interval_ - 1) / interval_);
  rates.resize(std::max(n, buckets_.size()), 0.0);
  const double seconds = simtime_to_seconds(interval_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    rates[i] = buckets_[i] / seconds;
  }
  return rates;
}

void BucketSeries::merge(const BucketSeries& other) {
  if (interval_ <= 0) {
    *this = other;
    return;
  }
  if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0.0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

void BucketSeries::reset() { buckets_.clear(); }

void SampleSeries::add(SimTime t, double value) { points_.emplace_back(t, value); }

void SampleSeries::merge(const SampleSeries& other) {
  points_.insert(points_.end(), other.points_.begin(), other.points_.end());
}

}  // namespace l2s::telemetry
