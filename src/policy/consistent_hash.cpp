#include "l2sim/policy/consistent_hash.hpp"

#include <algorithm>

#include "l2sim/common/error.hpp"

namespace l2s::policy {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ConsistentHashPolicy::ConsistentHashPolicy(int virtual_nodes)
    : virtual_nodes_(virtual_nodes) {
  L2S_REQUIRE(virtual_nodes >= 1);
}

void ConsistentHashPolicy::attach(const ClusterContext& ctx) {
  ctx_ = ctx;
  ring_.clear();
  alive_entries_.clear();
  for (int n = 0; n < ctx.node_count(); ++n) {
    for (int v = 0; v < virtual_nodes_; ++v) {
      const std::uint64_t point =
          mix64((static_cast<std::uint64_t>(n) << 32) | static_cast<std::uint64_t>(v));
      ring_[point] = n;
    }
  }
}

int ConsistentHashPolicy::entry_node(std::uint64_t seq, const trace::Request& /*r*/) {
  if (alive_entries_.empty())
    return static_cast<int>((seq + rotation_) % static_cast<std::uint64_t>(ctx_.node_count()));
  return alive_entries_[static_cast<std::size_t>((seq + rotation_) % alive_entries_.size())];
}

void ConsistentHashPolicy::on_pass_start(int pass) {
  rotation_ = static_cast<std::uint64_t>(pass) * 7919;
}

int ConsistentHashPolicy::owner_of(storage::FileId file) const {
  L2S_REQUIRE(!ring_.empty());
  const std::uint64_t h = mix64(0xF11E0000ULL + file);
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

int ConsistentHashPolicy::select_service_node(int /*entry*/, const trace::Request& r) {
  return owner_of(r.file);
}

SimTime ConsistentHashPolicy::forward_cpu_time(int entry) const {
  return ctx_.node(entry).forward_time();
}

void ConsistentHashPolicy::on_node_failed(int node) {
  // Drop the node's ring points: its keys remap to the ring successors
  // (about 1/N of the key space), everyone else's mapping is untouched.
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node)
      it = ring_.erase(it);
    else
      ++it;
  }
  if (alive_entries_.empty()) {
    for (int n = 0; n < ctx_.node_count(); ++n) alive_entries_.push_back(n);
  }
  alive_entries_.erase(std::remove(alive_entries_.begin(), alive_entries_.end(), node),
                       alive_entries_.end());
  if (alive_entries_.empty()) alive_entries_.push_back(node);
}

}  // namespace l2s::policy
