#include "l2sim/policy/l2s.hpp"

#include <algorithm>

#include "l2sim/common/error.hpp"

namespace {
constexpr int kDeadLoad = 1 << 28;
}  // namespace

namespace l2s::policy {

L2sPolicy::L2sPolicy(L2sParams params) : params_(params) {
  L2S_REQUIRE(params_.overload_threshold > params_.underload_threshold);
  L2S_REQUIRE(params_.underload_threshold > 0);
  L2S_REQUIRE(params_.broadcast_delta > 0);
  shrink_ns_ = seconds_to_simtime(params_.set_shrink_seconds);
}

void L2sPolicy::attach(const ClusterContext& ctx) {
  ctx_ = ctx;
  states_.clear();
  all_nodes_.clear();
  for (int n = 0; n < ctx.node_count(); ++n) {
    auto st = std::make_unique<NodeState>();
    st->view = cluster::LoadView(ctx.node_count());
    st->throttle = cluster::BroadcastThrottle(params_.broadcast_delta);
    states_.push_back(std::move(st));
    all_nodes_.push_back(n);
  }
}

int L2sPolicy::entry_node(std::uint64_t seq, const trace::Request& /*r*/) {
  // Round-robin DNS: clients spread connections over the nodes blindly.
  // After a failure is detected, DNS drops the dead node from rotation.
  if (alive_entries_.empty()) return static_cast<int>(seq % static_cast<std::uint64_t>(ctx_.node_count()));
  return alive_entries_[static_cast<std::size_t>(seq % alive_entries_.size())];
}

void L2sPolicy::on_node_failed(int node) {
  for (int n = 0; n < ctx_.node_count(); ++n) state(n).view.set(node, kDeadLoad);
  if (alive_entries_.empty()) {
    for (int n = 0; n < ctx_.node_count(); ++n) alive_entries_.push_back(n);
  }
  alive_entries_.erase(std::remove(alive_entries_.begin(), alive_entries_.end(), node),
                       alive_entries_.end());
  if (alive_entries_.empty()) alive_entries_.push_back(node);
}

void L2sPolicy::on_node_recovered(int node) {
  // Survivors zero their view of the restarted node: it is alive, idle and
  // cache-cold, and will re-announce itself through load broadcasts.
  for (int n = 0; n < ctx_.node_count(); ++n) state(n).view.set(node, 0);
  // The restarted node's replicated state (server sets, peer loads) is
  // gone. The rejoin handshake hands it only the current membership — any
  // still-dead peers stay marked — and everything else is re-learned.
  NodeState& st = state(node);
  st.sets.clear();
  st.view = cluster::LoadView(ctx_.node_count());
  st.throttle = cluster::BroadcastThrottle(params_.broadcast_delta);
  if (!alive_entries_.empty()) {
    for (int m = 0; m < ctx_.node_count(); ++m) {
      if (m == node) continue;
      if (std::find(alive_entries_.begin(), alive_entries_.end(), m) ==
          alive_entries_.end())
        st.view.set(m, kDeadLoad);
    }
    // DNS puts the node back in rotation (alive_entries_ stays sorted).
    if (std::find(alive_entries_.begin(), alive_entries_.end(), node) ==
        alive_entries_.end())
      alive_entries_.insert(
          std::upper_bound(alive_entries_.begin(), alive_entries_.end(), node),
          node);
  }
}

int L2sPolicy::pick_low(const cluster::LoadView& view, const std::vector<int>& candidates) {
  if (candidates.size() == 1) return candidates.front();
  int best = candidates[0];
  int second = candidates[1];
  if (view.get(second) < view.get(best)) std::swap(best, second);
  for (std::size_t i = 2; i < candidates.size(); ++i) {
    const int c = candidates[i];
    if (view.get(c) < view.get(best)) {
      second = best;
      best = c;
    } else if (view.get(c) < view.get(second)) {
      second = c;
    }
  }
  if (!params_.herd_damping) return best;
  // With damping on: nodes deciding independently on views that are stale
  // by up to a broadcast quantum can herd onto the same "least-loaded"
  // node; a uniform pick between the two lowest candidates damps the herd
  // (the power-of-two-choices effect). xorshift64 coin flip, deterministic
  // given the request sequence.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  return (rng_state_ & 1) != 0 ? best : second;
}

int L2sPolicy::pick_low_all(const cluster::LoadView& view) {
  return pick_low(view, all_nodes_);
}

int L2sPolicy::select_service_node(int entry, const trace::Request& r) {
  // Brownout: shed forwarding — serve where the request landed, pay the
  // (possible) cache miss locally instead of hand-off + remote service.
  // The server sets are neither consulted nor grown, so no set-change
  // broadcasts go out either.
  if (brownout_level_ >= 1 && ctx_.node(entry).alive()) return entry;
  NodeState& me = state(entry);
  const SimTime now = ctx_.sched->now();
  const storage::FileId file = r.file;
  const int T = params_.overload_threshold;

  // A node always knows its own load exactly.
  me.view.set(entry, ctx_.node(entry).open_connections());

  int chosen;
  bool set_changed = false;
  const std::vector<int>& set = me.sets.members(file);
  if (set.empty()) {
    // First request for this file (as far as this node knows): service it
    // here unless overloaded, in which case the least-loaded node starts
    // the server set.
    chosen = me.view.get(entry) <= T ? entry : pick_low_all(me.view);
    me.sets.add(file, chosen, now);
    set_changed = true;
    counters_.add("set_create");
  } else {
    const int least_member = pick_low(me.view, set);
    const bool entry_caches = std::find(set.begin(), set.end(), entry) != set.end();
    // "Distribute the requests for the file among these nodes according to
    // load considerations": prefer serving locally (no hand-off) only while
    // the entry node is not substantially more loaded than the set's best
    // member; otherwise the request fills the load valley.
    if (entry_caches && me.view.get(entry) <= T &&
        me.view.get(entry) <= me.view.get(least_member) + params_.local_bias) {
      chosen = entry;
    } else if (me.view.get(least_member) <= T) {
      // The least-loaded caching node can take it: locality wins and the
      // hand-off (if any) is cheaper than a disk miss elsewhere.
      chosen = least_member;
    } else {
      // Every caching node is overloaded. Replicating onto a new node only
      // helps if somewhere there is genuinely spare capacity (load below
      // the underload threshold t) — when the whole cluster is saturated
      // (e.g. disk-bound small clusters) replication would just thrash the
      // caches. Extreme overload (>= 2T) forces the issue regardless.
      const int spare = me.view.get(entry) <= T ? entry : pick_low_all(me.view);
      const int spare_threshold = (params_.underload_threshold + T) / 2;
      const bool worth_growing = me.view.get(spare) < spare_threshold ||
                                 me.view.get(least_member) >= 2 * T;
      if (worth_growing && !me.sets.contains(file, spare)) {
        chosen = spare;
        me.sets.add(file, chosen, now);
        set_changed = true;
        counters_.add("set_grow");
      } else {
        chosen = least_member;
      }
    }

    // Periodic shrink: the server chosen is underloaded, the set is
    // replicated, and the set has been stable for a while.
    if (!set_changed && set.size() > 1 && me.view.get(chosen) < params_.underload_threshold &&
        now - me.sets.last_modified(file) > shrink_ns_) {
      const int victim = me.view.most_loaded_of(set);
      if (victim != chosen) {
        me.sets.remove(file, victim, now);
        set_changed = true;
        counters_.add("set_shrink");
      }
    }
  }

  if (set_changed) broadcast_set_change(entry, file);
  // Optimistically count the request we are about to place on a peer; our
  // own count is maintained exactly by the connection lifecycle.
  if (chosen != entry) me.view.adjust(chosen, +1);
  return chosen;
}

SimTime L2sPolicy::forward_cpu_time(int entry) const {
  return ctx_.node(entry).forward_time();
}

void L2sPolicy::on_service_start(int node, const trace::Request& /*r*/) {
  maybe_broadcast_load(node);
}

void L2sPolicy::on_complete(int node, const trace::Request& /*r*/) {
  maybe_broadcast_load(node);
}

void L2sPolicy::on_connection_migrated(int from, int to, const trace::Request& /*r*/) {
  maybe_broadcast_load(from);
  maybe_broadcast_load(to);
}

void L2sPolicy::maybe_broadcast_load(int node) {
  const int load = ctx_.node(node).open_connections();
  NodeState& st = state(node);
  st.view.set(node, load);
  if (!st.throttle.should_broadcast(load)) return;
  counters_.add("load_broadcasts");
  ctx_.via->broadcast(node, ctx_.control_msg_bytes, [this, node, load](int dst) {
    state(dst).view.set(node, load);
  });
}

void L2sPolicy::broadcast_set_change(int origin, storage::FileId file) {
  counters_.add("locality_broadcasts");
  // Ship the new membership by value: receivers adopt it on delivery.
  std::vector<int> members = state(origin).sets.members(file);
  ctx_.via->broadcast(origin, ctx_.control_msg_bytes,
                      [this, file, members](int dst) {
                        state(dst).sets.replace(file, members, ctx_.sched->now());
                      });
}

int L2sPolicy::view_of(int owner, int target) const { return state(owner).view.get(target); }

const std::vector<int>& L2sPolicy::server_set_of(int owner, storage::FileId file) const {
  return state(owner).sets.members(file);
}

}  // namespace l2s::policy
