#include "l2sim/policy/round_robin.hpp"

#include <algorithm>

namespace l2s::policy {

int RoundRobinPolicy::entry_node(std::uint64_t seq, const trace::Request& /*r*/) {
  if (alive_.empty()) {
    for (int n = 0; n < ctx_.node_count(); ++n) alive_.push_back(n);
  }
  const std::size_t pick =
      static_cast<std::size_t>((seq + rotation_) % alive_.size());
  return alive_[pick];
}

void RoundRobinPolicy::on_node_failed(int node) {
  if (alive_.empty()) {
    for (int n = 0; n < ctx_.node_count(); ++n) alive_.push_back(n);
  }
  alive_.erase(std::remove(alive_.begin(), alive_.end(), node), alive_.end());
  if (alive_.empty()) alive_.push_back(node);  // nothing left: keep failing fast
}

void RoundRobinPolicy::on_node_recovered(int node) {
  if (alive_.empty()) return;  // no failure was ever detected: all in rotation
  if (std::find(alive_.begin(), alive_.end(), node) != alive_.end()) return;
  alive_.insert(std::upper_bound(alive_.begin(), alive_.end(), node), node);
}

void RoundRobinPolicy::on_pass_start(int pass) {
  // A phase coprime to common cluster sizes decorrelates the passes.
  rotation_ = static_cast<std::uint64_t>(pass) * 7919;
}

int RoundRobinPolicy::select_service_node(int entry, const trace::Request& /*r*/) {
  return entry;
}

}  // namespace l2s::policy
