#include "l2sim/policy/traditional.hpp"

namespace l2s::policy {

int TraditionalPolicy::entry_node(std::uint64_t /*seq*/, const trace::Request& /*r*/) {
  if (down_.size() != static_cast<std::size_t>(ctx_.node_count()))
    down_.assign(static_cast<std::size_t>(ctx_.node_count()), false);
  int best = -1;
  for (int n = 0; n < ctx_.node_count(); ++n) {
    if (down_[static_cast<std::size_t>(n)]) continue;
    if (best < 0 || ctx_.node(n).open_connections() < ctx_.node(best).open_connections())
      best = n;
  }
  return best < 0 ? 0 : best;  // all down: requests will fail at the node
}

void TraditionalPolicy::on_node_failed(int node) {
  if (down_.size() != static_cast<std::size_t>(ctx_.node_count()))
    down_.assign(static_cast<std::size_t>(ctx_.node_count()), false);
  down_[static_cast<std::size_t>(node)] = true;
}

void TraditionalPolicy::on_node_recovered(int node) {
  if (down_.size() != static_cast<std::size_t>(ctx_.node_count()))
    down_.assign(static_cast<std::size_t>(ctx_.node_count()), false);
  down_[static_cast<std::size_t>(node)] = false;
}

int TraditionalPolicy::select_service_node(int entry, const trace::Request& /*r*/) {
  return entry;
}

}  // namespace l2s::policy
