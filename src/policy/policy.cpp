#include "l2sim/policy/policy.hpp"

namespace l2s::policy {

SimTime Policy::forward_cpu_time(int /*entry*/) const { return 0; }

void Policy::on_service_start(int /*node*/, const trace::Request& /*r*/) {}

void Policy::on_complete(int /*node*/, const trace::Request& /*r*/) {}

int Policy::select_next_in_connection(int current, const trace::Request& r) {
  return select_service_node(current, r);
}

void Policy::on_connection_migrated(int /*from*/, int /*to*/, const trace::Request& /*r*/) {}

void Policy::on_pass_start(int /*pass*/) {}

void Policy::on_node_failed(int /*node*/) {}

void Policy::on_node_suspected(int node) { on_node_failed(node); }

void Policy::on_node_recovered(int /*node*/) {}

void Policy::on_brownout(int /*level*/) {}

void Policy::select_service_node_async(int entry, const trace::Request& r,
                                       std::function<void(int)> done) {
  done(select_service_node(entry, r));
}

}  // namespace l2s::policy
