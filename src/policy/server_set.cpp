#include "l2sim/policy/server_set.hpp"

#include <algorithm>

namespace l2s::policy {

const std::vector<int> ServerSetMap::kEmpty{};

const std::vector<int>& ServerSetMap::members(storage::FileId file) const {
  const auto it = sets_.find(file);
  return it == sets_.end() ? kEmpty : it->second.nodes;
}

bool ServerSetMap::contains(storage::FileId file, int node) const {
  const auto& m = members(file);
  return std::find(m.begin(), m.end(), node) != m.end();
}

void ServerSetMap::add(storage::FileId file, int node, SimTime now) {
  auto& entry = sets_[file];
  if (std::find(entry.nodes.begin(), entry.nodes.end(), node) != entry.nodes.end()) return;
  entry.nodes.push_back(node);
  entry.modified = now;
}

void ServerSetMap::remove(storage::FileId file, int node, SimTime now) {
  const auto it = sets_.find(file);
  if (it == sets_.end()) return;
  auto& nodes = it->second.nodes;
  const auto pos = std::find(nodes.begin(), nodes.end(), node);
  if (pos == nodes.end()) return;
  nodes.erase(pos);
  it->second.modified = now;
}

void ServerSetMap::replace(storage::FileId file, std::vector<int> nodes, SimTime now) {
  auto& entry = sets_[file];
  entry.nodes = std::move(nodes);
  entry.modified = now;
}

SimTime ServerSetMap::last_modified(storage::FileId file) const {
  const auto it = sets_.find(file);
  return it == sets_.end() ? 0 : it->second.modified;
}

std::size_t ServerSetMap::total_members() const {
  std::size_t total = 0;
  for (const auto& [file, entry] : sets_) total += entry.nodes.size();
  return total;
}

}  // namespace l2s::policy
