#include "l2sim/policy/lard_dispatcher.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::policy {
namespace {
constexpr int kDeadLoad = 1 << 28;
constexpr double kDecisionSeconds = 2e-5;  // table lookup + reply, 20 us
}  // namespace

LardDispatcherPolicy::LardDispatcherPolicy(LardParams params) : params_(params) {
  L2S_REQUIRE(params_.t_low > 0 && params_.t_high > params_.t_low);
  shrink_ns_ = seconds_to_simtime(params_.set_shrink_seconds);
  decision_time_ = seconds_to_simtime(kDecisionSeconds);
}

void LardDispatcherPolicy::attach(const ClusterContext& ctx) {
  ctx_ = ctx;
  view_ = cluster::LoadView(ctx.node_count());
  completions_since_update_.assign(static_cast<std::size_t>(ctx.node_count()), 0);
  down_.assign(static_cast<std::size_t>(ctx.node_count()), false);
}

int LardDispatcherPolicy::entry_node(std::uint64_t seq, const trace::Request& /*r*/) {
  if (ctx_.node_count() == 1) return 0;
  // Simple load-balancing switch over the serving nodes (1..N-1): fewest
  // open connections, skipping detected-dead nodes.
  int best = -1;
  for (int n = 1; n < ctx_.node_count(); ++n) {
    if (down_[static_cast<std::size_t>(n)]) continue;
    if (best < 0 || ctx_.node(n).open_connections() < ctx_.node(best).open_connections())
      best = n;
  }
  (void)seq;
  return best < 0 ? 1 : best;
}

int LardDispatcherPolicy::least_loaded_server() const {
  if (ctx_.node_count() == 1) return 0;
  int best = 1;
  for (int n = 2; n < ctx_.node_count(); ++n)
    if (view_.get(n) < view_.get(best)) best = n;
  return best;
}

bool LardDispatcherPolicy::any_server_below(int threshold) const {
  for (int n = 1; n < ctx_.node_count(); ++n)
    if (view_.get(n) < threshold) return true;
  return false;
}

int LardDispatcherPolicy::decide(const trace::Request& r) {
  if (ctx_.node_count() == 1) return 0;
  const SimTime now = ctx_.sched->now();
  const storage::FileId file = r.file;

  int chosen;
  const std::vector<int>& set = sets_.members(file);
  if (set.empty()) {
    chosen = least_loaded_server();
    sets_.add(file, chosen, now);
    counters_.add("set_create");
  } else {
    chosen = view_.least_loaded_of(set);
    const bool overloaded =
        (view_.get(chosen) > params_.t_high && any_server_below(params_.t_low)) ||
        view_.get(chosen) >= 2 * params_.t_high;
    if (overloaded) {
      const int extra = least_loaded_server();
      if (!sets_.contains(file, extra)) {
        sets_.add(file, extra, now);
        counters_.add("set_grow");
      }
      chosen = extra;
    } else if (set.size() > 1 && now - sets_.last_modified(file) > shrink_ns_) {
      const int victim = view_.most_loaded_of(set);
      if (victim != chosen) {
        sets_.remove(file, victim, now);
        counters_.add("set_shrink");
      }
    }
  }
  view_.adjust(chosen, +1);
  return chosen;
}

int LardDispatcherPolicy::select_service_node(int entry, const trace::Request& r) {
  // Synchronous fallback (used by persistent connections): skip the wire
  // round trip but use the same tables.
  (void)entry;
  return decide(r);
}

void LardDispatcherPolicy::select_service_node_async(int entry, const trace::Request& r,
                                                     std::function<void(int)> done) {
  if (ctx_.node_count() == 1 || entry == dispatcher()) {
    done(decide(r));
    return;
  }
  if (!ctx_.node(dispatcher()).alive()) {
    done(-1);  // the single point of failure has failed
    return;
  }
  // Two-way query: entry -> dispatcher (VIA), dispatcher CPU computes the
  // assignment, dispatcher -> entry (VIA), then the entry proceeds.
  counters_.add("dispatcher_queries");
  const trace::Request request = r;
  ctx_.via->send(entry, dispatcher(), ctx_.control_msg_bytes,
                 [this, entry, request, done = std::move(done)]() mutable {
                   if (!ctx_.node(dispatcher()).alive()) {
                     done(-1);  // died while the query was in flight
                     return;
                   }
                   ctx_.node(dispatcher())
                       .cpu()
                       .submit(decision_time_, [this, entry, request,
                                                done = std::move(done)]() mutable {
                         if (!ctx_.node(dispatcher()).alive()) {
                           done(-1);
                           return;
                         }
                         const int target = decide(request);
                         ctx_.via->send(dispatcher(), entry, ctx_.control_msg_bytes,
                                        [target, done = std::move(done)]() mutable {
                                          done(target);
                                        });
                       });
                 });
}

SimTime LardDispatcherPolicy::forward_cpu_time(int entry) const {
  return ctx_.node(entry).handoff_initiate_time();
}

void LardDispatcherPolicy::on_complete(int node, const trace::Request& /*r*/) {
  if (ctx_.node_count() == 1) return;
  auto& pending = completions_since_update_[static_cast<std::size_t>(node)];
  if (++pending < params_.update_batch) return;
  const int batch = pending;
  pending = 0;
  counters_.add("load_updates");
  ctx_.via->send(node, dispatcher(), ctx_.control_msg_bytes,
                 [this, node, batch]() { view_.adjust(node, -batch); });
}

void LardDispatcherPolicy::on_node_failed(int node) {
  down_[static_cast<std::size_t>(node)] = true;
  if (node == dispatcher()) return;  // fatal for distribution decisions
  view_.set(node, kDeadLoad);
}

}  // namespace l2s::policy
