#include "l2sim/policy/lard.hpp"

#include "l2sim/common/error.hpp"

namespace {
constexpr int kDeadLoad = 1 << 28;
}  // namespace

namespace l2s::policy {

LardPolicy::LardPolicy(LardParams params) : params_(params) {
  L2S_REQUIRE(params_.t_low > 0 && params_.t_high > params_.t_low);
  L2S_REQUIRE(params_.update_batch > 0);
  shrink_ns_ = seconds_to_simtime(params_.set_shrink_seconds);
}

void LardPolicy::attach(const ClusterContext& ctx) {
  ctx_ = ctx;
  view_ = cluster::LoadView(ctx.node_count());
  completions_since_update_.assign(static_cast<std::size_t>(ctx.node_count()), 0);
  front_end_ = front_end();
}

int LardPolicy::entry_node(std::uint64_t /*seq*/, const trace::Request& /*r*/) {
  return front_end_;
}

int LardPolicy::least_loaded_backend() const {
  // A 1-node cluster degenerates to the front-end serving everything.
  if (ctx_.node_count() == 1) return 0;
  int best = -1;
  for (int n = 0; n < ctx_.node_count(); ++n) {
    if (n == front_end_) continue;
    if (best < 0 || view_.get(n) < view_.get(best)) best = n;
  }
  return best;
}

void LardPolicy::on_node_failed(int node) {
  if (node == front_end_) {
    if (!params_.front_end_failover || ctx_.node_count() == 1) return;  // fatal
    // Warm-spare promotion: the least-loaded live back-end takes over
    // front-end duty. It drains its existing connections but takes no new
    // service assignments (its view entry is pinned dead, exactly like the
    // old front-end's).
    const int promoted = least_loaded_backend();
    if (promoted < 0 || view_.get(promoted) >= kDeadLoad) return;  // nobody left
    view_.set(node, kDeadLoad);
    front_end_ = promoted;
    view_.set(promoted, kDeadLoad);
    counters_.add("front_end_failover");
    return;
  }
  // An unreachable back-end looks infinitely loaded, so neither the
  // least-loaded choice nor existing server sets ever pick it again.
  view_.set(node, kDeadLoad);
  completions_since_update_[static_cast<std::size_t>(node)] = 0;
}

void LardPolicy::on_node_recovered(int node) {
  if (node == front_end_) return;
  // Rejoin as a cold back-end with zero open connections — even an
  // ex-front-end: the promoted replacement keeps the role.
  view_.set(node, 0);
  completions_since_update_[static_cast<std::size_t>(node)] = 0;
}

bool LardPolicy::any_backend_below(int threshold) const {
  for (int n = 0; n < ctx_.node_count(); ++n) {
    if (n == front_end_) continue;
    if (view_.get(n) < threshold) return true;
  }
  return false;
}

int LardPolicy::select_service_node(int entry, const trace::Request& r) {
  L2S_REQUIRE(entry == front_end_);
  return decide(r);
}

int LardPolicy::select_next_in_connection(int current, const trace::Request& r) {
  // Brownout: shed migration — the persistent connection stays put (disk
  // can serve anything; only locality suffers), sparing the hand-off CPU
  // and VIA traffic while the cluster is overloaded.
  if (brownout_level_ >= 1 && ctx_.node(current).alive()) return current;
  const int chosen = decide(r);
  // decide() counts a new assignment at the chosen node; if the connection
  // stays where it is, no load moved.
  if (chosen == current) view_.adjust(current, -1);
  return chosen;
}

void LardPolicy::on_connection_migrated(int from, int /*to*/, const trace::Request& /*r*/) {
  // The new node's view entry was bumped by decide(); the old node reports
  // the connection's departure like a termination (batched updates).
  record_termination(from);
}

int LardPolicy::decide(const trace::Request& r) {
  if (ctx_.node_count() == 1) return 0;
  const SimTime now = ctx_.sched->now();
  const storage::FileId file = r.file;

  int chosen;
  const std::vector<int>& set = sets_.members(file);
  if (set.empty()) {
    chosen = least_loaded_backend();
    sets_.add(file, chosen, now);
    counters_.add("set_create");
  } else {
    chosen = view_.least_loaded_of(set);
    // Brownout freezes replication churn: no set growth (which would pull
    // cold copies onto already-busy nodes) and no shrink (which would
    // evict warm copies mid-overload) — just the least-loaded member.
    const bool overloaded =
        brownout_level_ < 1 &&
        ((view_.get(chosen) > params_.t_high && any_backend_below(params_.t_low)) ||
         view_.get(chosen) >= 2 * params_.t_high);
    if (overloaded) {
      const int extra = least_loaded_backend();
      if (!sets_.contains(file, extra)) {
        sets_.add(file, extra, now);
        counters_.add("set_grow");
      }
      chosen = extra;
    } else if (brownout_level_ < 1 && set.size() > 1 &&
               now - sets_.last_modified(file) > shrink_ns_) {
      // Replication decayed: drop the most loaded member.
      const int victim = view_.most_loaded_of(set);
      if (victim != chosen) {
        sets_.remove(file, victim, now);
        counters_.add("set_shrink");
      }
    }
  }

  view_.adjust(chosen, +1);
  return chosen;
}

SimTime LardPolicy::forward_cpu_time(int entry) const {
  return ctx_.node(entry).handoff_initiate_time();
}

void LardPolicy::on_complete(int node, const trace::Request& /*r*/) {
  record_termination(node);
}

void LardPolicy::record_termination(int node) {
  if (ctx_.node_count() == 1) return;
  // The front-end's own entry is pinned (it is not a service candidate), so
  // a promoted front-end draining its old back-end connections sends no
  // update to itself.
  if (node == front_end_) return;
  auto& pending = completions_since_update_[static_cast<std::size_t>(node)];
  if (++pending < params_.update_batch) return;
  const int batch = pending;
  pending = 0;
  counters_.add("load_updates");
  ctx_.via->send(node, front_end_, ctx_.control_msg_bytes,
                 [this, node, batch]() { view_.adjust(node, -batch); });
}

int LardPolicy::front_end_view(int node) const { return view_.get(node); }

}  // namespace l2s::policy
