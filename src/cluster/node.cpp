#include "l2sim/cluster/node.hpp"

#include "l2sim/cache/gdsf_cache.hpp"
#include "l2sim/cache/lru_cache.hpp"
#include "l2sim/common/error.hpp"

namespace l2s::cluster {
namespace {

std::unique_ptr<cache::FileCache> make_cache(CachePolicy policy, Bytes capacity) {
  switch (policy) {
    case CachePolicy::kLru:
      return std::make_unique<cache::LruCache>(capacity);
    case CachePolicy::kGdsf:
      return std::make_unique<cache::GdsfCache>(capacity);
  }
  throw_error("unknown cache policy");
}

}  // namespace

Node::Node(des::Scheduler& sched, int id, const NodeParams& params, double cpu_speed)
    : id_(id),
      name_("node" + std::to_string(id)),
      cpu_params_(params.cpu),
      cpu_speed_(cpu_speed),
      cpu_(sched, name_ + "/cpu"),
      nic_(sched, name_),
      disk_(sched, name_ + "/disk", params.disk),
      cache_(make_cache(params.cache_policy, params.cache_bytes)) {
  L2S_REQUIRE(id >= 0);
  L2S_REQUIRE(cpu_speed > 0.0);
}

void Node::connection_closed() {
  L2S_REQUIRE(open_connections_ > 0);
  --open_connections_;
}

void Node::recover() {
  L2S_REQUIRE(!alive_);
  alive_ = true;
  ++epoch_;
  open_connections_ = 0;  // the crash orphaned whatever was counted
  cache_->clear();        // main memory does not survive a restart
}

void Node::set_cpu_slow(double factor) {
  L2S_REQUIRE(factor > 0.0);
  cpu_slow_ = factor;
}

SimTime Node::parse_time() const {
  return seconds_to_simtime(cpu_slow_ / cpu_params_.parse_rate / cpu_speed_);
}

SimTime Node::forward_time() const {
  return seconds_to_simtime(cpu_slow_ / cpu_params_.forward_rate / cpu_speed_);
}

SimTime Node::handoff_initiate_time() const {
  return seconds_to_simtime(cpu_slow_ * cpu_params_.handoff_initiate_s / cpu_speed_);
}

SimTime Node::reply_time(Bytes bytes) const {
  return seconds_to_simtime(cpu_slow_ *
                            (cpu_params_.reply_overhead_s +
                             bytes_to_kib(bytes) / cpu_params_.reply_kb_per_s) /
                            cpu_speed_);
}

void Node::reset_stats() {
  cpu_.reset_stats();
  nic_.reset_stats();
  disk_.resource().reset_stats();
  cache_->reset_stats();
}

}  // namespace l2s::cluster
