#include "l2sim/cluster/injector.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::cluster {

Injector::Injector(const trace::Trace& trace, std::uint64_t max_in_flight)
    : trace_(&trace), max_in_flight_(max_in_flight) {
  L2S_REQUIRE(max_in_flight > 0);
}

void Injector::start(InjectFn inject) {
  L2S_REQUIRE(inject != nullptr);
  inject_ = std::move(inject);
  pump();
}

bool Injector::try_take(std::uint64_t& seq, trace::Request& request) {
  const auto& requests = trace_->requests();
  if (next_ >= requests.size()) return false;
  seq = next_;
  request = requests[next_++];
  return true;
}

bool Injector::try_admit(std::uint64_t& seq, trace::Request& request) {
  if (in_flight_ >= max_in_flight_) return false;
  if (!try_take(seq, request)) return false;
  ++in_flight_;
  return true;
}

void Injector::on_complete() {
  L2S_REQUIRE(in_flight_ > 0);
  --in_flight_;
  if (inject_) pump();  // closed-loop mode refills; open loop only frees
}

void Injector::pump() {
  const auto& requests = trace_->requests();
  while (in_flight_ < max_in_flight_ && next_ < requests.size()) {
    ++in_flight_;
    const std::uint64_t seq = next_++;
    // inject_ may complete a request synchronously in degenerate setups;
    // the counters above are already consistent when it runs.
    inject_(seq, requests[seq]);
  }
}

}  // namespace l2s::cluster
