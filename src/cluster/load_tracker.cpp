#include "l2sim/cluster/load_tracker.hpp"

#include <cstdlib>

namespace l2s::cluster {

int LoadView::least_loaded() const {
  int best = 0;
  for (int n = 1; n < nodes(); ++n)
    if (loads_[static_cast<std::size_t>(n)] < loads_[static_cast<std::size_t>(best)]) best = n;
  return best;
}

int LoadView::least_loaded_of(const std::vector<int>& candidates) const {
  L2S_REQUIRE(!candidates.empty());
  int best = candidates.front();
  for (const int n : candidates)
    if (get(n) < get(best)) best = n;
  return best;
}

int LoadView::most_loaded_of(const std::vector<int>& candidates) const {
  L2S_REQUIRE(!candidates.empty());
  int best = candidates.front();
  for (const int n : candidates)
    if (get(n) > get(best)) best = n;
  return best;
}

bool LoadView::any_below(int threshold) const {
  for (const int l : loads_)
    if (l < threshold) return true;
  return false;
}

bool BroadcastThrottle::should_broadcast(int current) {
  if (std::abs(current - last_) < delta_) return false;
  last_ = current;
  return true;
}

}  // namespace l2s::cluster
