#include "l2sim/cluster/connection.hpp"

// Connection is a plain data carrier; its logic lives in the simulation
// lifecycle (core/simulation.cpp). This translation unit exists to anchor
// the header's ODR-used inline functions during non-LTO builds.

namespace l2s::cluster {}
