#include "l2sim/queueing/jackson.hpp"

#include <limits>

#include "l2sim/common/error.hpp"

namespace l2s::queueing {

void JacksonNetwork::add_station(Station s) {
  if (s.service_rate <= 0.0) throw_error("station " + s.name + ": service rate must be positive");
  if (s.visit_ratio < 0.0) throw_error("station " + s.name + ": visit ratio must be nonnegative");
  if (s.replicas < 1) throw_error("station " + s.name + ": replicas must be >= 1");
  stations_.push_back(std::move(s));
}

double JacksonNetwork::max_throughput() const {
  double best = std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& s : stations_) {
    if (s.visit_ratio <= 0.0) continue;
    any = true;
    best = std::min(best, s.service_rate / s.visit_ratio);
  }
  if (!any) throw_error("JacksonNetwork: no station with positive visit ratio");
  return best;
}

const std::string& JacksonNetwork::bottleneck() const {
  const Station* best = nullptr;
  double best_cap = std::numeric_limits<double>::infinity();
  for (const auto& s : stations_) {
    if (s.visit_ratio <= 0.0) continue;
    const double cap = s.service_rate / s.visit_ratio;
    if (cap < best_cap) {
      best_cap = cap;
      best = &s;
    }
  }
  if (best == nullptr) throw_error("JacksonNetwork: no station with positive visit ratio");
  return best->name;
}

bool JacksonNetwork::stable_at(double lambda) const {
  for (const auto& s : stations_)
    if (!mm1_stable(lambda * s.visit_ratio, s.service_rate)) return false;
  return true;
}

NetworkReport JacksonNetwork::solve(double lambda) const {
  NetworkReport report{};
  report.mean_response = 0.0;
  for (const auto& s : stations_) {
    if (s.visit_ratio <= 0.0) continue;
    const auto m = mm1_metrics(lambda * s.visit_ratio, s.service_rate);
    report.mean_response +=
        static_cast<double>(s.replicas) * s.visit_ratio * m.mean_response;
    report.stations.push_back({s.name, m});
  }
  return report;
}

}  // namespace l2s::queueing
