#include "l2sim/queueing/mmc.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::queueing {

bool mmc_stable(double lambda, double mu, int servers) {
  return lambda >= 0.0 && lambda < static_cast<double>(servers) * mu;
}

double erlang_c(double offered_load, int servers) {
  if (servers < 1) throw_error("erlang_c: servers must be >= 1");
  if (offered_load < 0.0) throw_error("erlang_c: offered load must be nonnegative");
  if (offered_load >= static_cast<double>(servers)) return 1.0;  // saturated
  // Stable recurrence for the Erlang-B blocking probability:
  //   B(0) = 1;  B(k) = a B(k-1) / (k + a B(k-1))
  double b = 1.0;
  for (int k = 1; k <= servers; ++k) {
    b = offered_load * b / (static_cast<double>(k) + offered_load * b);
  }
  // Erlang C from Erlang B.
  const double rho = offered_load / static_cast<double>(servers);
  return b / (1.0 - rho * (1.0 - b));
}

MmcMetrics mmc_metrics(double lambda, double mu, int servers) {
  if (mu <= 0.0) throw_error("mmc_metrics: service rate must be positive");
  if (lambda < 0.0) throw_error("mmc_metrics: arrival rate must be nonnegative");
  if (!mmc_stable(lambda, mu, servers))
    throw_error("mmc_metrics: queue is unstable (lambda >= c*mu)");

  const double a = lambda / mu;
  const double c = static_cast<double>(servers);
  const double rho = a / c;

  MmcMetrics m{};
  m.utilization = rho;
  m.prob_wait = erlang_c(a, servers);
  m.mean_waiting = lambda > 0.0 ? m.prob_wait / (c * mu - lambda) : 0.0;
  m.mean_response = m.mean_waiting + 1.0 / mu;
  m.mean_customers = lambda * m.mean_response;
  return m;
}

}  // namespace l2s::queueing
