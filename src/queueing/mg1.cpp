#include "l2sim/queueing/mg1.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::queueing {

Mg1Metrics mg1_metrics(double lambda, double mu, double cs2) {
  if (mu <= 0.0) throw_error("mg1_metrics: service rate must be positive");
  if (lambda < 0.0) throw_error("mg1_metrics: arrival rate must be nonnegative");
  if (cs2 < 0.0) throw_error("mg1_metrics: cs2 must be nonnegative");
  if (lambda >= mu) throw_error("mg1_metrics: queue is unstable (lambda >= mu)");

  const double rho = lambda / mu;
  Mg1Metrics m{};
  m.utilization = rho;
  m.mean_waiting = (1.0 + cs2) / 2.0 * rho / (mu - lambda);
  m.mean_response = m.mean_waiting + 1.0 / mu;
  m.mean_customers = lambda * m.mean_response;
  return m;
}

Mg1Metrics md1_metrics(double lambda, double mu) { return mg1_metrics(lambda, mu, 0.0); }

}  // namespace l2s::queueing
