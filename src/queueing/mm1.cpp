#include "l2sim/queueing/mm1.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::queueing {

bool mm1_stable(double lambda, double mu) { return lambda >= 0.0 && lambda < mu; }

Mm1Metrics mm1_metrics(double lambda, double mu) {
  if (mu <= 0.0) throw_error("mm1_metrics: service rate must be positive");
  if (lambda < 0.0) throw_error("mm1_metrics: arrival rate must be nonnegative");
  if (!mm1_stable(lambda, mu)) throw_error("mm1_metrics: queue is unstable (lambda >= mu)");
  const double rho = lambda / mu;
  Mm1Metrics m{};
  m.utilization = rho;
  m.mean_customers = rho / (1.0 - rho);
  m.mean_response = 1.0 / (mu - lambda);
  m.mean_waiting = rho / (mu - lambda);
  return m;
}

}  // namespace l2s::queueing
