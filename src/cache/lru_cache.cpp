#include "l2sim/cache/lru_cache.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::cache {

LruCache::LruCache(Bytes capacity) : capacity_(capacity) {
  L2S_REQUIRE(capacity > 0);
}

bool LruCache::lookup(FileId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return true;
}

bool LruCache::contains(FileId id) const { return index_.contains(id); }

void LruCache::evict_one() {
  L2S_REQUIRE(!lru_.empty());
  const Entry victim = lru_.back();
  lru_.pop_back();
  index_.erase(victim.id);
  used_ -= victim.size;
  ++stats_.evictions;
  stats_.bytes_evicted += victim.size;
}

void LruCache::insert(FileId id, Bytes size) {
  if (size > capacity_) return;  // cannot ever fit; serve from disk each time
  const auto it = index_.find(id);
  if (it != index_.end()) {
    // Refresh: update size in place (sizes are stable in practice, but the
    // trace format permits re-stat) and move to MRU.
    used_ -= it->second->size;
    it->second->size = size;
    used_ += size;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{id, size});
    index_[id] = lru_.begin();
    used_ += size;
    ++stats_.insertions;
  }
  while (used_ > capacity_) evict_one();
}

bool LruCache::erase(FileId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  used_ -= it->second->size;
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

void LruCache::clear() {
  lru_.clear();
  index_.clear();
  used_ = 0;
}

}  // namespace l2s::cache
