#include "l2sim/cache/stack_distance.hpp"

#include <algorithm>

#include "l2sim/common/error.hpp"

namespace l2s::cache {
namespace {

/// Fenwick tree over access positions; supports point update and suffix
/// sums. Used twice: with weight 1 (count of distinct files) and with
/// weight = file size (bytes of distinct files).
class Fenwick {
 public:
  explicit Fenwick(std::size_t size) : tree_(size + 1, 0) {}

  void add(std::size_t index, std::int64_t delta) {
    for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1))
      tree_[i] += delta;
  }

  /// Sum of [0, index].
  [[nodiscard]] std::int64_t prefix(std::size_t index) const {
    std::int64_t s = 0;
    for (std::size_t i = index + 1; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

  [[nodiscard]] std::int64_t total() const { return prefix(tree_.size() - 2); }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace

StackDistanceAnalyzer::StackDistanceAnalyzer(const trace::Trace& trace) {
  const auto& requests = trace.requests();
  accesses_ = requests.size();
  const std::size_t n = requests.size();

  Fenwick present(n);      // 1 at the position of each file's last access
  Fenwick present_bytes(n);  // file size at that position
  std::vector<std::int64_t> last_pos(trace.files().count(), -1);

  histogram_.clear();
  byte_distances_sorted_.clear();
  byte_distances_sorted_.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    const auto file = requests[i].file;
    const Bytes size = trace.files().size_of(file);
    const std::int64_t prev = last_pos[file];
    if (prev < 0) {
      ++cold_;
    } else {
      // Distinct files touched after `prev`: total present entries at
      // positions > prev, excluding the file itself (still marked at prev).
      const std::int64_t upto_prev = present.prefix(static_cast<std::size_t>(prev));
      const std::int64_t distinct_after = present.total() - upto_prev;
      const auto d = static_cast<std::uint64_t>(distinct_after);
      if (histogram_.size() <= d) histogram_.resize(d + 1, 0);
      ++histogram_[d];

      const std::int64_t bytes_upto_prev =
          present_bytes.prefix(static_cast<std::size_t>(prev));
      const std::int64_t bytes_after = present_bytes.total() - bytes_upto_prev;
      // A cache must hold the distinct files above plus the file itself.
      byte_distances_sorted_.push_back(static_cast<Bytes>(bytes_after) + size);

      present.add(static_cast<std::size_t>(prev), -1);
      present_bytes.add(static_cast<std::size_t>(prev),
                        -static_cast<std::int64_t>(size));
    }
    present.add(i, 1);
    present_bytes.add(i, static_cast<std::int64_t>(size));
    last_pos[file] = static_cast<std::int64_t>(i);
  }

  cumulative_.resize(histogram_.size());
  std::uint64_t acc = 0;
  for (std::size_t d = 0; d < histogram_.size(); ++d) {
    acc += histogram_[d];
    cumulative_[d] = acc;
  }
  std::sort(byte_distances_sorted_.begin(), byte_distances_sorted_.end());
}

double StackDistanceAnalyzer::hit_rate_at_files(std::uint64_t capacity_files) const {
  if (accesses_ == 0) return 0.0;
  if (capacity_files == 0 || cumulative_.empty()) return 0.0;
  // A cache of k files hits accesses with distance <= k-1 (the reused file
  // plus up to k-1 distinct files above it fit).
  const std::size_t idx = std::min<std::size_t>(capacity_files - 1, cumulative_.size() - 1);
  return static_cast<double>(cumulative_[idx]) / static_cast<double>(accesses_);
}

double StackDistanceAnalyzer::hit_rate_at_bytes(Bytes capacity) const {
  if (accesses_ == 0) return 0.0;
  const auto it = std::upper_bound(byte_distances_sorted_.begin(),
                                   byte_distances_sorted_.end(), capacity);
  const auto hits = static_cast<std::uint64_t>(it - byte_distances_sorted_.begin());
  return static_cast<double>(hits) / static_cast<double>(accesses_);
}

std::vector<double> StackDistanceAnalyzer::miss_curve_bytes(
    const std::vector<Bytes>& capacities) const {
  std::vector<double> curve;
  curve.reserve(capacities.size());
  for (const Bytes c : capacities) curve.push_back(1.0 - hit_rate_at_bytes(c));
  return curve;
}

}  // namespace l2s::cache
