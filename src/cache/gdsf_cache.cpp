#include "l2sim/cache/gdsf_cache.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::cache {

GdsfCache::GdsfCache(Bytes capacity) : capacity_(capacity) {
  L2S_REQUIRE(capacity > 0);
}

double GdsfCache::priority_of(double frequency, Bytes size) const {
  // Uniform miss cost; size measured in KB so priorities stay in a sane
  // numeric range for typical web files.
  return floor_ + frequency / std::max(bytes_to_kib(size), 1e-3);
}

void GdsfCache::reprioritize(FileId id, Entry& entry) {
  by_priority_.erase(entry.by_priority);
  entry.by_priority = by_priority_.emplace(priority_of(entry.frequency, entry.size), id);
}

bool GdsfCache::lookup(FileId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  it->second.frequency += 1.0;
  reprioritize(id, it->second);
  ++stats_.hits;
  return true;
}

bool GdsfCache::contains(FileId id) const { return index_.contains(id); }

void GdsfCache::evict_one() {
  L2S_REQUIRE(!by_priority_.empty());
  const auto victim = by_priority_.begin();
  // The aging floor rises to the evicted priority: long-resident files
  // decay relative to fresh insertions.
  floor_ = victim->first;
  const FileId id = victim->second;
  const auto it = index_.find(id);
  L2S_REQUIRE(it != index_.end());
  used_ -= it->second.size;
  ++stats_.evictions;
  stats_.bytes_evicted += it->second.size;
  by_priority_.erase(victim);
  index_.erase(it);
}

void GdsfCache::insert(FileId id, Bytes size) {
  if (size > capacity_) return;
  const auto it = index_.find(id);
  if (it != index_.end()) {
    used_ -= it->second.size;
    it->second.size = size;
    used_ += size;
    reprioritize(id, it->second);
  } else {
    Entry entry{size, 1.0, {}};
    entry.by_priority = by_priority_.emplace(priority_of(1.0, size), id);
    index_.emplace(id, entry);
    used_ += size;
    ++stats_.insertions;
  }
  while (used_ > capacity_) evict_one();
}

bool GdsfCache::erase(FileId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  used_ -= it->second.size;
  by_priority_.erase(it->second.by_priority);
  index_.erase(it);
  return true;
}

void GdsfCache::clear() {
  index_.clear();
  by_priority_.clear();
  used_ = 0;
  floor_ = 0.0;
}

}  // namespace l2s::cache
