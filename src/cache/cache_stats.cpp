#include "l2sim/cache/cache_stats.hpp"

namespace l2s::cache {

double CacheStats::hit_rate() const {
  const std::uint64_t total = accesses();
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

double CacheStats::miss_rate() const {
  const std::uint64_t total = accesses();
  return total == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(total);
}

void CacheStats::reset() { *this = CacheStats{}; }

void CacheStats::merge(const CacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  insertions += other.insertions;
  evictions += other.evictions;
  bytes_evicted += other.bytes_evicted;
}

}  // namespace l2s::cache
