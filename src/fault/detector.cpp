#include "l2sim/fault/detector.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::fault {

FailureDetector::FailureDetector(des::Scheduler& sched, net::ViaNetwork& via,
                                 std::vector<cluster::Node*> nodes,
                                 DetectionParams params, Bytes heartbeat_bytes)
    : sched_(sched),
      via_(via),
      nodes_(std::move(nodes)),
      params_(params),
      heartbeat_bytes_(heartbeat_bytes) {
  params_.validate();
  L2S_REQUIRE(params_.heartbeats);
  L2S_REQUIRE(!nodes_.empty());
}

void FailureDetector::start(std::function<bool()> active, NotifyFn on_suspect,
                            NotifyFn on_readmit) {
  active_ = std::move(active);
  on_suspect_ = std::move(on_suspect);
  on_readmit_ = std::move(on_readmit);
  last_heard_.assign(nodes_.size(), sched_.now());
  suspected_.assign(nodes_.size(), false);
  fresh_streak_.assign(nodes_.size(), 0);
  const SimTime period = seconds_to_simtime(params_.period_seconds);
  // Staggered first beats (i+1 ns apart) keep same-instant broadcast bursts
  // ordered but are far below any service time, so timing is unaffected.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const int node = static_cast<int>(i);
    sched_.after(period + static_cast<SimTime>(i + 1),
                 [this, node]() { heartbeat_round(node); });
  }
  sched_.after(period, [this]() { monitor_round(); });
}

void FailureDetector::heartbeat_round(int node) {
  if (!active_()) return;  // run drained: stop rescheduling
  cluster::Node& n = *nodes_[static_cast<std::size_t>(node)];
  if (n.alive() && nodes_.size() > 1) {
    ++heartbeats_;
    via_.broadcast(node, heartbeat_bytes_, [this, node](int /*dst*/) {
      last_heard_[static_cast<std::size_t>(node)] = sched_.now();
    });
  }
  sched_.after(seconds_to_simtime(params_.period_seconds),
               [this, node]() { heartbeat_round(node); });
}

void FailureDetector::monitor_round() {
  if (!active_()) return;
  const SimTime now = sched_.now();
  const SimTime window = params_.suspicion_window();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const bool stale = now - last_heard_[i] > window;
    if (!suspected_[i] && stale) {
      suspected_[i] = true;
      fresh_streak_[i] = 0;
      if (on_suspect_) on_suspect_(static_cast<int>(i), now);
    } else if (suspected_[i]) {
      // Flapping hysteresis: readmission needs readmit_after_fresh
      // *consecutive* fresh sweeps, so one lucky heartbeat over a lossy
      // link cannot oscillate the node in and out of the cluster.
      fresh_streak_[i] = stale ? 0 : fresh_streak_[i] + 1;
      if (fresh_streak_[i] >= params_.readmit_after_fresh) {
        suspected_[i] = false;
        fresh_streak_[i] = 0;
        if (on_readmit_) on_readmit_(static_cast<int>(i), now);
      }
    }
  }
  sched_.after(seconds_to_simtime(params_.period_seconds), [this]() { monitor_round(); });
}

}  // namespace l2s::fault
