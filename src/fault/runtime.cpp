#include "l2sim/fault/runtime.hpp"

#include <utility>

#include "l2sim/common/error.hpp"

namespace l2s::fault {

FaultRuntime::FaultRuntime(des::Scheduler& sched,
                           std::vector<cluster::Node*> nodes, FaultPlan plan,
                           Rng rng)
    : sched_(sched), nodes_(std::move(nodes)), plan_(std::move(plan)), rng_(rng) {
  L2S_REQUIRE(!nodes_.empty());
  plan_.validate(static_cast<int>(nodes_.size()));
}

void FaultRuntime::arm(SimTime measure_start, Hooks hooks) {
  L2S_REQUIRE(!armed_);
  armed_ = true;
  base_ = measure_start;
  hooks_ = std::move(hooks);
  const SimTime now = sched_.now();
  // Events land at base_ + offset; anything already in the past (base_ can
  // equal now) fires on the next dispatch in submission order.
  const auto at = [&](double seconds) {
    const SimTime t = base_ + seconds_to_simtime(seconds);
    return t > now ? t - now : SimTime{0};
  };
  for (const Crash& c : plan_.crashes) {
    sched_.after(at(c.at_seconds), [this, c]() {
      cluster::Node& n = node(c.node);
      if (!n.alive()) return;  // already down (overlapping plans)
      n.fail();
      if (hooks_.on_crash) hooks_.on_crash(c.node, sched_.now());
    });
  }
  for (const Recover& r : plan_.recoveries) {
    sched_.after(at(r.at_seconds), [this, r]() {
      cluster::Node& n = node(r.node);
      if (n.alive()) return;
      n.recover();
      if (hooks_.on_recover) hooks_.on_recover(r.node, sched_.now());
    });
  }
  for (const FailSlow& s : plan_.slowdowns) {
    const auto apply = [this, s](double factor) {
      cluster::Node& n = node(s.node);
      if (s.resource == Resource::kDisk)
        n.set_disk_slow(factor);
      else
        n.set_cpu_slow(factor);
    };
    sched_.after(at(s.from_seconds), [apply, s]() { apply(s.factor); });
    if (s.until_seconds < std::numeric_limits<double>::infinity())
      sched_.after(at(s.until_seconds), [apply]() { apply(1.0); });
  }
}

net::LinkFault FaultRuntime::on_message(int src, int dst) {
  net::LinkFault f;
  if (!armed_ || plan_.message_faults.empty()) return f;
  const SimTime now = sched_.now();
  for (const MessageFault& m : plan_.message_faults) {
    if (m.src != -1 && m.src != src) continue;
    if (m.dst != -1 && m.dst != dst) continue;
    const SimTime from = base_ + seconds_to_simtime(m.from_seconds);
    if (now < from) continue;
    if (m.until_seconds < std::numeric_limits<double>::infinity() &&
        now >= base_ + seconds_to_simtime(m.until_seconds))
      continue;
    // Draws happen for every matching rule even after a drop is already
    // decided, so adding a second rule never perturbs the first rule's
    // stream of outcomes.
    if (m.loss_prob > 0.0 && rng_.next_double() < m.loss_prob) f.drop = true;
    if (m.duplicate_prob > 0.0 && rng_.next_double() < m.duplicate_prob)
      f.duplicate = true;
    if (m.extra_delay_seconds > 0.0)
      f.extra_delay += seconds_to_simtime(m.extra_delay_seconds);
  }
  if (f.drop) {
    f.duplicate = false;
    f.extra_delay = 0;
  }
  return f;
}

}  // namespace l2s::fault
