#include "l2sim/fault/plan.hpp"

#include <cmath>

#include "l2sim/common/error.hpp"

namespace l2s::fault {
namespace {

void check_node(int node, int nodes, const char* what) {
  if (node < 0 || node >= nodes)
    throw_error(std::string("FaultPlan: ") + what + " node out of range");
}

void check_time(double seconds, const char* what) {
  if (!(seconds >= 0.0))
    throw_error(std::string("FaultPlan: ") + what + " time must be nonnegative");
}

void check_prob(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0))
    throw_error(std::string("FaultPlan: ") + what + " must be a probability in [0, 1]");
}

}  // namespace

bool FaultPlan::lossy() const {
  for (const auto& m : message_faults)
    if (m.loss_prob > 0.0) return true;
  return false;
}

void FaultPlan::validate(int nodes) const {
  for (const auto& c : crashes) {
    check_node(c.node, nodes, "crash");
    check_time(c.at_seconds, "crash");
  }
  for (const auto& r : recoveries) {
    check_node(r.node, nodes, "recover");
    check_time(r.at_seconds, "recover");
    // A recovery needs an earlier crash of the same node to undo.
    bool preceded = false;
    for (const auto& c : crashes)
      if (c.node == r.node && c.at_seconds < r.at_seconds) preceded = true;
    if (!preceded)
      throw_error("FaultPlan: recovery without an earlier crash of the same node");
  }
  for (const auto& s : slowdowns) {
    check_node(s.node, nodes, "fail-slow");
    check_time(s.from_seconds, "fail-slow start");
    if (!(s.factor > 0.0)) throw_error("FaultPlan: fail-slow factor must be positive");
    if (!(s.until_seconds >= s.from_seconds))
      throw_error("FaultPlan: fail-slow window is inverted");
  }
  for (const auto& m : message_faults) {
    check_prob(m.loss_prob, "message loss_prob");
    check_prob(m.duplicate_prob, "message duplicate_prob");
    check_time(m.extra_delay_seconds, "message extra delay");
    check_time(m.from_seconds, "message fault start");
    if (!(m.until_seconds >= m.from_seconds))
      throw_error("FaultPlan: message fault window is inverted");
    if (m.src != -1) check_node(m.src, nodes, "message fault src");
    if (m.dst != -1) check_node(m.dst, nodes, "message fault dst");
  }
}

void DetectionParams::validate() const {
  if (!heartbeats) return;
  if (!(period_seconds > 0.0))
    throw_error("DetectionParams: heartbeat period must be positive");
  if (suspect_after_missed < 1)
    throw_error("DetectionParams: suspect_after_missed must be >= 1");
  if (readmit_after_fresh < 1)
    throw_error("DetectionParams: readmit_after_fresh must be >= 1");
}

}  // namespace l2s::fault
