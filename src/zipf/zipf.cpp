#include "l2sim/zipf/zipf.hpp"

#include <cmath>

#include "l2sim/common/error.hpp"
#include "l2sim/zipf/harmonic.hpp"

namespace l2s::zipf {

double z(double n, double files, double alpha) {
  L2S_REQUIRE(files > 0.0);
  if (n <= 0.0) return 0.0;
  if (n >= files) return 1.0;
  return harmonic(n, alpha) / harmonic(files, alpha);
}

double invert_population(double n, double target, double alpha) {
  if (!(target > 0.0 && target <= 1.0))
    throw_error("invert_population: target hit rate must be in (0, 1]");
  L2S_REQUIRE(n > 0.0);
  if (target >= 1.0) return n;

  // z(n, f) decreases monotonically in f from 1 (f == n) toward 0, so
  // bisection on log f converges unconditionally. The upper bracket grows
  // until z drops below the target; it is capped to avoid infinite loops on
  // targets that are unreachable in double precision.
  double lo = std::log(n);
  double hi = std::log(n) + 1.0;
  constexpr double kMaxLog = 700.0;  // ~1e304
  while (z(n, std::exp(hi), alpha) > target) {
    hi += 4.0;
    if (hi > kMaxLog)
      throw_error("invert_population: target hit rate unreachable (too close to 0)");
  }
  for (int iter = 0; iter < 200 && hi - lo > 1e-12; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (z(n, std::exp(mid), alpha) > target)
      lo = mid;
    else
      hi = mid;
  }
  return std::exp(0.5 * (lo + hi));
}

}  // namespace l2s::zipf
