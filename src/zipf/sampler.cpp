#include "l2sim/zipf/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "l2sim/common/error.hpp"

namespace l2s::zipf {

ZipfSampler::ZipfSampler(std::uint64_t files, double alpha) : alpha_(alpha) {
  L2S_REQUIRE(files > 0);
  L2S_REQUIRE(alpha > 0.0);
  cdf_.resize(files);
  double acc = 0.0;
  for (std::uint64_t i = 0; i < files; ++i) {
    acc += std::pow(static_cast<double>(i + 1), -alpha);
    cdf_[i] = acc;
  }
  const double total = acc;
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::uint64_t rank) const {
  L2S_REQUIRE(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace l2s::zipf
