#include "l2sim/zipf/harmonic.hpp"

#include <cmath>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "l2sim/common/error.hpp"

namespace l2s::zipf {
namespace {

// Exact summation is used up to this bound; beyond it the midpoint-rule
// integral contributes error below 1e-10 relative for alpha in (0, 2].
constexpr std::uint64_t kExactPrefix = 100000;

// Cache of exact prefix sums keyed by alpha. Model sweeps evaluate H at
// thousands of points for a handful of alphas, so memoizing the O(n) prefix
// matters. Guarded for safe use from parallel sweeps.
class PrefixCache {
 public:
  double prefix(double alpha) {
    const std::scoped_lock lock(mu_);
    auto [it, inserted] = sums_.try_emplace(alpha, 0.0);
    if (inserted) {
      double s = 0.0;
      for (std::uint64_t i = 1; i <= kExactPrefix; ++i)
        s += std::pow(static_cast<double>(i), -alpha);
      it->second = s;
    }
    return it->second;
  }

 private:
  std::mutex mu_;
  std::unordered_map<double, double> sums_;
};

PrefixCache& prefix_cache() {
  static PrefixCache cache;
  return cache;
}

// Integral of x^-alpha over [a, b] (a, b > 0).
double power_integral(double a, double b, double alpha) {
  if (b <= a) return 0.0;
  if (std::abs(alpha - 1.0) < 1e-12) return std::log(b / a);
  return (std::pow(b, 1.0 - alpha) - std::pow(a, 1.0 - alpha)) / (1.0 - alpha);
}

}  // namespace

double harmonic_exact(std::uint64_t n, double alpha) {
  L2S_REQUIRE(alpha > 0.0);
  double s = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) s += std::pow(static_cast<double>(i), -alpha);
  return s;
}

double harmonic(double x, double alpha) {
  L2S_REQUIRE(alpha > 0.0);
  if (x <= 0.0) return 0.0;
  const double floor_x = std::floor(x);
  double whole;
  if (floor_x <= static_cast<double>(kExactPrefix)) {
    // The cast is safe only under the bound above — the model routinely
    // evaluates H at populations around 1e300, far beyond uint64_t.
    whole = harmonic_exact(static_cast<std::uint64_t>(floor_x), alpha);
  } else {
    // Exact prefix plus midpoint-rule tail: sum_{i=p+1..n} i^-alpha
    // ~= integral over [p+1/2, n+1/2] of t^-alpha dt.
    whole = prefix_cache().prefix(alpha) +
            power_integral(static_cast<double>(kExactPrefix) + 0.5, floor_x + 0.5, alpha);
  }
  const double frac = x - floor_x;
  if (frac > 0.0) whole += frac * std::pow(floor_x + 1.0, -alpha);
  return whole;
}

}  // namespace l2s::zipf
