#include "l2sim/net/flow.hpp"

#include <algorithm>
#include <limits>

#include "l2sim/common/error.hpp"

namespace l2s::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

FlowNetwork::FlowNetwork(des::Scheduler& sched, Topology& topo,
                         const NetParams& params)
    : sched_(sched), topo_(topo), params_(params) {}

double FlowNetwork::constraint_capacity(std::size_t c) const {
  const std::size_t ports = 2 * static_cast<std::size_t>(topo_.nodes());
  if (c < ports) return params_.link_bits_per_s;  // a host tx or rx port
  return topo_.link(c - ports).bits_per_s();
}

void FlowNetwork::start(int src, int dst, Bytes bytes, des::EventFn on_done) {
  L2S_REQUIRE(src >= 0 && src < topo_.nodes());
  L2S_REQUIRE(dst >= 0 && dst < topo_.nodes());
  L2S_REQUIRE(src != dst);
  // Bill the running flows for the time elapsed at their current rates
  // before the new flow changes the allocation.
  advance_progress();
  Flow f;
  f.id = next_id_++;
  f.src = src;
  f.dst = dst;
  f.remaining_bits = static_cast<double>(bytes) * 8.0;
  const std::size_t n = static_cast<std::size_t>(topo_.nodes());
  f.constraints.push_back(static_cast<std::size_t>(src));      // tx port
  f.constraints.push_back(n + static_cast<std::size_t>(dst));  // rx port
  std::vector<std::size_t> path;
  topo_.path_links(src, dst, path);
  for (const std::size_t l : path) f.constraints.push_back(2 * n + l);
  f.done = std::move(on_done);
  flows_.push_back(std::move(f));
  ++started_;
  max_concurrent_ = std::max(max_concurrent_, flows_.size());
  reschedule();
}

void FlowNetwork::recompute_rates() {
  ++recomputes_;
  // Unique constraint ids, ascending — the deterministic iteration order
  // for bottleneck selection.
  std::vector<std::size_t> ids;
  for (const auto& f : flows_)
    ids.insert(ids.end(), f.constraints.begin(), f.constraints.end());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  auto index_of = [&ids](std::size_t c) {
    return static_cast<std::size_t>(
        std::lower_bound(ids.begin(), ids.end(), c) - ids.begin());
  };
  std::vector<double> cap(ids.size());
  std::vector<int> count(ids.size(), 0);
  for (std::size_t i = 0; i < ids.size(); ++i)
    cap[i] = constraint_capacity(ids[i]);
  for (const auto& f : flows_)
    for (const std::size_t c : f.constraints) ++count[index_of(c)];

  // Progressive filling: repeatedly saturate the tightest constraint and
  // freeze its flows at the fair share. Ties break toward the lowest
  // constraint id; flows freeze in ascending flow id — both deterministic.
  std::vector<char> frozen(flows_.size(), 0);
  std::size_t left = flows_.size();
  while (left > 0) {
    double best = kInf;
    std::size_t bottleneck = ids.size();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (count[i] <= 0) continue;
      const double share = cap[i] / count[i];
      if (share < best) {
        best = share;
        bottleneck = i;
      }
    }
    if (bottleneck == ids.size()) break;  // defensive: every flow has ports
    // Floor at 1 bit/s so floating-point cancellation can never produce a
    // zero rate (which would stall completion scheduling).
    const double share = std::max(best, 1.0);
    for (std::size_t fi = 0; fi < flows_.size(); ++fi) {
      if (frozen[fi] != 0) continue;
      Flow& f = flows_[fi];
      const bool crosses =
          std::find(f.constraints.begin(), f.constraints.end(),
                    ids[bottleneck]) != f.constraints.end();
      if (!crosses) continue;
      f.rate_bps = share;
      frozen[fi] = 1;
      --left;
      for (const std::size_t c : f.constraints) {
        const std::size_t j = index_of(c);
        cap[j] -= share;
        --count[j];
      }
    }
  }
}

void FlowNetwork::advance_progress() {
  const SimTime now = sched_.now();
  const double dt = simtime_to_seconds(now - last_progress_);
  if (dt > 0.0) {
    const std::size_t ports = 2 * static_cast<std::size_t>(topo_.nodes());
    for (auto& f : flows_) {
      const double sent = std::min(f.rate_bps * dt, f.remaining_bits);
      f.remaining_bits -= sent;
      // Attribute the carried bits to the path's links for utilization
      // reports (ports are per-host and not reported).
      for (const std::size_t c : f.constraints)
        if (c >= ports) topo_.link(c - ports).add_flow_bits(sent);
    }
  }
  last_progress_ = now;
}

void FlowNetwork::reschedule() {
  ++epoch_;  // any completion tick in flight is now stale
  if (flows_.empty()) return;
  recompute_rates();
  double horizon = kInf;
  for (const auto& f : flows_)
    horizon = std::min(horizon, f.remaining_bits / f.rate_bps);
  // Round the finish up to the next nanosecond so the tick lands at or
  // after the true completion instant.
  const SimTime delta = std::max<SimTime>(1, seconds_to_simtime(horizon) + 1);
  const std::uint64_t epoch = epoch_;
  sched_.at(sched_.now() + delta, [this, epoch]() { on_tick(epoch); });
}

void FlowNetwork::on_tick(std::uint64_t epoch) {
  if (epoch != epoch_) return;  // superseded by a later start/finish
  advance_progress();
  std::vector<Flow> keep;
  keep.reserve(flows_.size());
  for (auto& f : flows_) {
    // Within two tick-roundings of done counts as done; a flow that
    // narrowly misses is caught by the immediately rescheduled tick.
    if (f.remaining_bits <= f.rate_bps * 4e-9 + 1e-3) {
      ++completed_;
      // Transmission is over; the last byte still rides the path's
      // propagation floor to the receiver.
      sched_.after(topo_.min_latency(f.src, f.dst), std::move(f.done));
    } else {
      keep.push_back(std::move(f));
    }
  }
  flows_.swap(keep);
  reschedule();
}

void FlowNetwork::reset_stats() {
  started_ = 0;
  completed_ = 0;
  recomputes_ = 0;
  max_concurrent_ = flows_.size();
}

}  // namespace l2s::net
