#include "l2sim/net/via.hpp"

#include "l2sim/common/error.hpp"
#include "l2sim/net/flow.hpp"

namespace l2s::net {

ViaNetwork::ViaNetwork(des::Scheduler& sched, Topology& topology,
                       const NetParams& params)
    : sched_(sched), topo_(topology), params_(params) {}

int ViaNetwork::add_endpoint(Endpoint ep) {
  L2S_REQUIRE(ep.cpu != nullptr && ep.nic != nullptr);
  endpoints_.push_back(ep);
  return static_cast<int>(endpoints_.size()) - 1;
}

void ViaNetwork::transmit(int src, int dst, Bytes bytes, des::EventFn on_delivered) {
  L2S_REQUIRE(src >= 0 && src < endpoints());
  L2S_REQUIRE(dst >= 0 && dst < endpoints());
  L2S_REQUIRE(src != dst);
  ++messages_;
  des::Resource& tx = endpoints_[static_cast<std::size_t>(src)].nic->tx();
  des::Resource& rx = endpoints_[static_cast<std::size_t>(dst)].nic->rx();
  const SimTime xfer = params_.nic_transfer_time(bytes);

  LinkFault fault;
  if (fault_model_ != nullptr) fault = fault_model_->on_message(src, dst);
  if (fault.drop) {
    // The sender still pushes the bytes out; they die in the network.
    ++dropped_;
    tx.submit(xfer, []() {});
    return;
  }
  if (fault.duplicate || fault.extra_delay > 0) {
    if (fault.duplicate) ++duplicated_;
    if (fault.extra_delay > 0) ++delayed_;
    const bool dup = fault.duplicate;
    const SimTime extra = fault.extra_delay;
    tx.submit(xfer, [this, src, dst, bytes, &rx, xfer, dup, extra,
                     done = std::move(on_delivered)]() mutable {
      topo_.traverse(src, dst, bytes,
                     [this, &rx, xfer, dup, extra, done = std::move(done)]() mutable {
      auto deliver = [this, &rx, xfer, dup, done = std::move(done)]() mutable {
        ++delivered_;
        rx.submit(xfer, std::move(done));
        // Receiver-side dedup: the copy costs NIC time, nothing fires.
        if (dup) rx.submit(xfer, []() {});
      };
        if (extra > 0) {
          sched_.after(extra, std::move(deliver));
        } else {
          deliver();
        }
      });
    });
    return;
  }

  // Healthy link: the original allocation-lean path, unchanged.
  tx.submit(xfer, [this, src, dst, bytes, &rx, xfer,
                   done = std::move(on_delivered)]() mutable {
    topo_.traverse(src, dst, bytes, [this, &rx, xfer, done = std::move(done)]() mutable {
      ++delivered_;
      rx.submit(xfer, std::move(done));
    });
  });
}

void ViaNetwork::bulk(int src, int dst, Bytes bytes, des::EventFn on_delivered) {
  if (flow_ == nullptr) {
    // Message mode: bulk is byte-for-byte a transmit (the single-switch
    // golden digests depend on this equivalence).
    transmit(src, dst, bytes, std::move(on_delivered));
    return;
  }
  L2S_REQUIRE(src >= 0 && src < endpoints());
  L2S_REQUIRE(dst >= 0 && dst < endpoints());
  L2S_REQUIRE(src != dst);
  ++messages_;
  LinkFault fault;
  if (fault_model_ != nullptr) fault = fault_model_->on_message(src, dst);
  if (fault.drop) {
    // Flow mode abstracts the NIC queues away, so a dropped bulk transfer
    // burns nothing; it just never arrives (the fault oracle was consulted
    // so replay stays aligned with message mode).
    ++dropped_;
    return;
  }
  if (fault.duplicate) ++duplicated_;  // receiver-side dedup: counted only
  const SimTime extra = fault.extra_delay;
  if (extra > 0) ++delayed_;
  flow_->start(src, dst, bytes,
               [this, extra, done = std::move(on_delivered)]() mutable {
                 auto deliver = [this, done = std::move(done)]() mutable {
                   ++delivered_;
                   done();
                 };
                 if (extra > 0) {
                   sched_.after(extra, std::move(deliver));
                 } else {
                   deliver();
                 }
               });
}

void ViaNetwork::send(int src, int dst, Bytes bytes, des::EventFn on_delivered) {
  L2S_REQUIRE(src >= 0 && src < endpoints());
  L2S_REQUIRE(dst >= 0 && dst < endpoints());
  des::Resource& src_cpu = *endpoints_[static_cast<std::size_t>(src)].cpu;
  des::Resource& dst_cpu = *endpoints_[static_cast<std::size_t>(dst)].cpu;
  const SimTime cpu_time = params_.cpu_msg_time();
  src_cpu.submit(cpu_time, [this, src, dst, bytes, &dst_cpu, cpu_time,
                            done = std::move(on_delivered)]() mutable {
    transmit(src, dst, bytes, [&dst_cpu, cpu_time, done = std::move(done)]() mutable {
      dst_cpu.submit(cpu_time, std::move(done));
    });
  });
}

void ViaNetwork::broadcast(int src, Bytes bytes,
                           const std::function<void(int dst)>& on_delivered) {
  for (int dst = 0; dst < endpoints(); ++dst) {
    if (dst == src) continue;
    send(src, dst, bytes, [on_delivered, dst]() { on_delivered(dst); });
  }
}

}  // namespace l2s::net
