#include "l2sim/net/switch_fabric.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::net {

SwitchFabric::SwitchFabric(des::Scheduler& sched, SimTime latency)
    : sched_(sched), latency_(latency) {
  L2S_REQUIRE(latency >= 0);
}

void SwitchFabric::traverse(des::EventFn deliver) {
  ++traversals_;
  sched_.after(latency_, std::move(deliver));
}

}  // namespace l2s::net
