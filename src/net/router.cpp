#include "l2sim/net/router.hpp"

namespace l2s::net {

Router::Router(des::Scheduler& sched, const NetParams& params)
    : params_(params), res_(sched, "router") {}

void Router::forward(Bytes bytes, des::EventFn done) {
  res_.submit(params_.router_time(bytes), std::move(done));
}

}  // namespace l2s::net
