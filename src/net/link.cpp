#include "l2sim/net/link.hpp"

#include <utility>

#include "l2sim/common/error.hpp"

namespace l2s::net {

Link::Link(des::Scheduler& sched, std::string name, double bits_per_s)
    : server_(sched, name), name_(std::move(name)), bits_per_s_(bits_per_s) {
  L2S_REQUIRE(bits_per_s > 0.0);
}

void Link::transfer(Bytes bytes, des::EventFn done) {
  ++transfers_;
  bytes_ += bytes;
  server_.submit(transfer_time(bytes), std::move(done));
}

double Link::flow_utilization(SimTime elapsed) const {
  if (elapsed <= 0) return 0.0;
  return flow_bits_ / (bits_per_s_ * simtime_to_seconds(elapsed));
}

void Link::reset_stats() {
  server_.reset_stats();
  transfers_ = 0;
  bytes_ = 0;
  flow_bits_ = 0.0;
}

}  // namespace l2s::net
