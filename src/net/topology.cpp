#include "l2sim/net/topology.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "l2sim/common/error.hpp"

namespace l2s::net {

namespace {

/// Shared completion state of one segmented multi-hop transfer: the
/// delivery callback fires once, after the last segment clears the final
/// capacitated hop.
struct Pending {
  std::uint64_t remaining = 0;
  des::EventFn deliver;
};

std::uint64_t segment_count(Bytes bytes, Bytes segment) {
  if (bytes == 0) return 1;
  return (bytes + segment - 1) / segment;
}

Bytes segment_size(Bytes bytes, Bytes segment, std::uint64_t index,
                   std::uint64_t segments) {
  if (index + 1 < segments) return segment;
  return bytes - (segments - 1) * segment;  // the (possibly short) tail
}

}  // namespace

// --- TopologyConfig ---------------------------------------------------------

void TopologyConfig::validate(int nodes) const {
  if (segment_bytes == 0) throw_error("topology: segment_bytes must be >= 1");
  switch (kind) {
    case TopologyKind::kSingleSwitch:
      return;
    case TopologyKind::kRackAware: {
      if (racks < 1)
        throw_error("topology: rack-aware needs racks >= 1, got " +
                    std::to_string(racks));
      if (nodes % racks != 0)
        throw_error("topology: " + std::to_string(nodes) +
                    " nodes are not divisible into " + std::to_string(racks) +
                    " racks");
      if (oversubscription <= 0.0)
        throw_error("topology: oversubscription must be > 0");
      return;
    }
    case TopologyKind::kFatTree: {
      if (fat_tree_k < 2 || fat_tree_k % 2 != 0)
        throw_error("topology: fat-tree arity must be even and >= 2, got " +
                    std::to_string(fat_tree_k));
      const int capacity = fat_tree_k * fat_tree_k * fat_tree_k / 4;
      if (nodes > capacity)
        throw_error("topology: " + std::to_string(nodes) +
                    " nodes exceed the k=" + std::to_string(fat_tree_k) +
                    " fat-tree capacity of " + std::to_string(capacity) +
                    " hosts");
      return;
    }
  }
  throw_error("topology: unknown kind");
}

int TopologyConfig::rack_span(int nodes) const {
  switch (kind) {
    case TopologyKind::kSingleSwitch:
      return 1;
    case TopologyKind::kRackAware:
      if (racks >= 1 && nodes % racks == 0) return std::max(1, nodes / racks);
      return 1;  // invalid geometry: validate() reports it with context
    case TopologyKind::kFatTree:
      if (fat_tree_k >= 2 && fat_tree_k % 2 == 0) return fat_tree_k / 2;
      return 1;
  }
  return 1;
}

const char* TopologyConfig::kind_name() const {
  switch (kind) {
    case TopologyKind::kSingleSwitch: return "single-switch";
    case TopologyKind::kRackAware: return "rack-aware";
    case TopologyKind::kFatTree: return "fat-tree";
  }
  return "unknown";
}

// --- Topology ---------------------------------------------------------------

void Topology::path_links(int /*src*/, int /*dst*/,
                          std::vector<std::size_t>& /*out*/) const {}

void Topology::reset_stats() {
  traversals_ = 0;
  for (auto& l : links_) l->reset_stats();
}

std::unique_ptr<Topology> Topology::make(const TopologyConfig& config,
                                         des::Scheduler& sched,
                                         const NetParams& params, int nodes) {
  switch (config.kind) {
    case TopologyKind::kSingleSwitch:
      return std::make_unique<SingleSwitch>(sched, params, nodes);
    case TopologyKind::kRackAware:
      return std::make_unique<RackAware>(sched, params, nodes, config);
    case TopologyKind::kFatTree:
      return std::make_unique<FatTree>(sched, params, nodes, config);
  }
  throw_error("topology: unknown kind");
}

// --- SingleSwitch -----------------------------------------------------------

SingleSwitch::SingleSwitch(des::Scheduler& sched, const NetParams& params,
                           int nodes)
    : Topology(sched, params), nodes_(nodes), latency_(params.switch_latency()) {
  L2S_REQUIRE(nodes >= 1);
}

void SingleSwitch::traverse(int /*src*/, int /*dst*/, Bytes /*bytes*/,
                            des::EventFn deliver) {
  // Exactly the pre-refactor SwitchFabric::traverse: one scheduled event,
  // no payload dependence — the golden digests depend on this.
  ++traversals_;
  sched_.after(latency_, std::move(deliver));
}

// --- RackAware --------------------------------------------------------------

RackAware::RackAware(des::Scheduler& sched, const NetParams& params, int nodes,
                     const TopologyConfig& config)
    : Topology(sched, params),
      nodes_(nodes),
      racks_(config.racks),
      span_(nodes / std::max(1, config.racks)),
      tor_latency_(params.switch_latency()),
      core_latency_(seconds_to_simtime(config.core_latency_s)),
      segment_(config.segment_bytes) {
  L2S_REQUIRE(nodes >= 1);
  L2S_REQUIRE(racks_ >= 1 && nodes % racks_ == 0);
  L2S_REQUIRE(config.oversubscription > 0.0);
  const double trunk_bits =
      params.link_bits_per_s * span_ / config.oversubscription;
  links_.reserve(2 * static_cast<std::size_t>(racks_));
  for (int r = 0; r < racks_; ++r) {
    links_.push_back(std::make_unique<Link>(
        sched, "rack" + std::to_string(r) + ".up", trunk_bits));
    links_.push_back(std::make_unique<Link>(
        sched, "rack" + std::to_string(r) + ".down", trunk_bits));
  }
}

void RackAware::traverse(int src, int dst, Bytes bytes, des::EventFn deliver) {
  ++traversals_;
  const int sr = rack_of(src);
  const int dr = rack_of(dst);
  if (sr == dr) {
    // Same rack: one contention-free ToR hop, like the paper's switch.
    sched_.after(tor_latency_, std::move(deliver));
    return;
  }
  Link& up = uplink(sr);
  Link& down = downlink(dr);
  const std::uint64_t segs = segment_count(bytes, segment_);
  auto pending = std::make_shared<Pending>();
  pending->remaining = segs;
  pending->deliver = std::move(deliver);
  // src ToR hop, then each segment store-and-forwards uplink -> core ->
  // downlink independently (FIFO links preserve order); the dst ToR hop is
  // charged once, after the last segment lands.
  sched_.after(tor_latency_, [this, &up, &down, bytes, segs, pending]() {
    for (std::uint64_t i = 0; i < segs; ++i) {
      const Bytes seg = segment_size(bytes, segment_, i, segs);
      up.transfer(seg, [this, &down, seg, pending]() {
        sched_.after(core_latency_, [this, &down, seg, pending]() {
          down.transfer(seg, [this, pending]() {
            if (--pending->remaining == 0)
              sched_.after(tor_latency_, std::move(pending->deliver));
          });
        });
      });
    }
  });
}

void RackAware::path_links(int src, int dst,
                           std::vector<std::size_t>& out) const {
  const int sr = rack_of(src);
  const int dr = rack_of(dst);
  if (sr == dr) return;
  out.push_back(2 * static_cast<std::size_t>(sr));       // uplink
  out.push_back(2 * static_cast<std::size_t>(dr) + 1);   // downlink
}

// --- FatTree ----------------------------------------------------------------
//
// Flat link layout, with E = total edge switches = pods * k/2 (and the
// aggregation-switch count equal to E):
//   [0,            E*k/2)   edge -> agg uplinks      edge_up(e, a)
//   [E*k/2,      2*E*k/2)   agg  -> edge downlinks   edge_down(e, a)
//   [2*E*k/2,    3*E*k/2)   agg  -> core uplinks     agg_up(p, a, r)
//   [3*E*k/2,    4*E*k/2)   core -> agg downlinks    agg_down(p, a, r)

FatTree::FatTree(des::Scheduler& sched, const NetParams& params, int nodes,
                 const TopologyConfig& config)
    : Topology(sched, params),
      nodes_(nodes),
      k_(config.fat_tree_k),
      half_k_(config.fat_tree_k / 2),
      edges_(config.fat_tree_k * (config.fat_tree_k / 2)),
      switch_latency_(params.switch_latency()),
      core_latency_(seconds_to_simtime(config.core_latency_s)),
      segment_(config.segment_bytes) {
  L2S_REQUIRE(nodes >= 1);
  L2S_REQUIRE(k_ >= 2 && k_ % 2 == 0);
  L2S_REQUIRE(nodes <= k_ * k_ * k_ / 4);
  const std::size_t tier = static_cast<std::size_t>(edges_) *
                           static_cast<std::size_t>(half_k_);
  links_.reserve(4 * tier);
  for (int e = 0; e < edges_; ++e)
    for (int a = 0; a < half_k_; ++a)
      links_.push_back(std::make_unique<Link>(
          sched, "ft.e" + std::to_string(e) + ".a" + std::to_string(a) + ".up",
          params.link_bits_per_s));
  for (int e = 0; e < edges_; ++e)
    for (int a = 0; a < half_k_; ++a)
      links_.push_back(std::make_unique<Link>(
          sched, "ft.e" + std::to_string(e) + ".a" + std::to_string(a) + ".down",
          params.link_bits_per_s));
  for (int p = 0; p < k_; ++p)
    for (int a = 0; a < half_k_; ++a)
      for (int r = 0; r < half_k_; ++r)
        links_.push_back(std::make_unique<Link>(
            sched,
            "ft.p" + std::to_string(p) + ".a" + std::to_string(a) + ".c" +
                std::to_string(r) + ".up",
            params.link_bits_per_s));
  for (int p = 0; p < k_; ++p)
    for (int a = 0; a < half_k_; ++a)
      for (int r = 0; r < half_k_; ++r)
        links_.push_back(std::make_unique<Link>(
            sched,
            "ft.p" + std::to_string(p) + ".a" + std::to_string(a) + ".c" +
                std::to_string(r) + ".down",
            params.link_bits_per_s));
}

std::size_t FatTree::edge_up(int edge, int agg) const {
  return static_cast<std::size_t>(edge) * static_cast<std::size_t>(half_k_) +
         static_cast<std::size_t>(agg);
}

std::size_t FatTree::edge_down(int edge, int agg) const {
  const std::size_t tier = static_cast<std::size_t>(edges_) *
                           static_cast<std::size_t>(half_k_);
  return tier + edge_up(edge, agg);
}

std::size_t FatTree::agg_up(int pod, int agg, int core_row) const {
  const std::size_t tier = static_cast<std::size_t>(edges_) *
                           static_cast<std::size_t>(half_k_);
  return 2 * tier +
         (static_cast<std::size_t>(pod) * static_cast<std::size_t>(half_k_) +
          static_cast<std::size_t>(agg)) *
             static_cast<std::size_t>(half_k_) +
         static_cast<std::size_t>(core_row);
}

std::size_t FatTree::agg_down(int pod, int agg, int core_row) const {
  const std::size_t tier = static_cast<std::size_t>(edges_) *
                           static_cast<std::size_t>(half_k_);
  return tier + agg_up(pod, agg, core_row);
}

std::uint32_t FatTree::route_hash(int src, int dst) const {
  // splitmix64-style finalizer over the (src, dst) pair: a pure function
  // of message identity, so routing is deterministic (ECMP stand-in).
  std::uint64_t x =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(dst);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return static_cast<std::uint32_t>(x);
}

int FatTree::hops(int src, int dst) const {
  if (edge_of(src) == edge_of(dst)) return 1;
  if (pod_of(src) == pod_of(dst)) return 3;
  return 5;
}

SimTime FatTree::min_latency(int src, int dst) const {
  if (edge_of(src) == edge_of(dst)) return switch_latency_;
  if (pod_of(src) == pod_of(dst)) return 3 * switch_latency_;
  return 4 * switch_latency_ + core_latency_;
}

void FatTree::traverse(int src, int dst, Bytes bytes, des::EventFn deliver) {
  ++traversals_;
  const int se = edge_of(src);
  const int de = edge_of(dst);
  if (se == de) {
    // Same edge switch: one contention-free hop.
    sched_.after(switch_latency_, std::move(deliver));
    return;
  }
  const std::uint32_t h = route_hash(src, dst);
  const int agg = static_cast<int>(h % static_cast<std::uint32_t>(half_k_));
  const std::uint64_t segs = segment_count(bytes, segment_);
  auto pending = std::make_shared<Pending>();
  pending->remaining = segs;
  pending->deliver = std::move(deliver);
  auto finish = [this, pending]() {
    if (--pending->remaining == 0)
      sched_.after(switch_latency_, std::move(pending->deliver));
  };
  if (pod_of(src) == pod_of(dst)) {
    // edge -> agg -> edge: two capacitated hops around the pod's chosen
    // aggregation switch.
    Link& up = link(edge_up(se, agg));
    Link& down = link(edge_down(de, agg));
    sched_.after(switch_latency_, [this, &up, &down, bytes, segs, finish]() {
      for (std::uint64_t i = 0; i < segs; ++i) {
        const Bytes seg = segment_size(bytes, segment_, i, segs);
        up.transfer(seg, [this, &down, seg, finish]() {
          sched_.after(switch_latency_, [&down, seg, finish]() {
            down.transfer(seg, finish);
          });
        });
      }
    });
    return;
  }
  // Cross-pod: edge -> agg -> core -> agg -> edge.
  const int row = static_cast<int>((h / static_cast<std::uint32_t>(half_k_)) %
                                   static_cast<std::uint32_t>(half_k_));
  Link& up1 = link(edge_up(se, agg));
  Link& up2 = link(agg_up(pod_of(src), agg, row));
  Link& down2 = link(agg_down(pod_of(dst), agg, row));
  Link& down1 = link(edge_down(de, agg));
  sched_.after(switch_latency_, [this, &up1, &up2, &down2, &down1, bytes, segs,
                                 finish]() {
    for (std::uint64_t i = 0; i < segs; ++i) {
      const Bytes seg = segment_size(bytes, segment_, i, segs);
      up1.transfer(seg, [this, &up2, &down2, &down1, seg, finish]() {
        sched_.after(switch_latency_, [this, &up2, &down2, &down1, seg,
                                       finish]() {
          up2.transfer(seg, [this, &down2, &down1, seg, finish]() {
            sched_.after(core_latency_, [this, &down2, &down1, seg, finish]() {
              down2.transfer(seg, [this, &down1, seg, finish]() {
                sched_.after(switch_latency_, [&down1, seg, finish]() {
                  down1.transfer(seg, finish);
                });
              });
            });
          });
        });
      });
    }
  });
}

void FatTree::path_links(int src, int dst,
                         std::vector<std::size_t>& out) const {
  const int se = edge_of(src);
  const int de = edge_of(dst);
  if (se == de) return;
  const std::uint32_t h = route_hash(src, dst);
  const int agg = static_cast<int>(h % static_cast<std::uint32_t>(half_k_));
  out.push_back(edge_up(se, agg));
  if (pod_of(src) != pod_of(dst)) {
    const int row = static_cast<int>((h / static_cast<std::uint32_t>(half_k_)) %
                                     static_cast<std::uint32_t>(half_k_));
    out.push_back(agg_up(pod_of(src), agg, row));
    out.push_back(agg_down(pod_of(dst), agg, row));
  }
  out.push_back(edge_down(de, agg));
}

}  // namespace l2s::net
