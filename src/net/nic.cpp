#include "l2sim/net/nic.hpp"

namespace l2s::net {

Nic::Nic(des::Scheduler& sched, const std::string& node_name)
    : rx_(sched, node_name + "/nic-rx"), tx_(sched, node_name + "/nic-tx") {}

void Nic::reset_stats() {
  rx_.reset_stats();
  tx_.reset_stats();
}

}  // namespace l2s::net
