#include "l2sim/obs/decision.hpp"

namespace l2s::obs {

std::string_view to_string(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::kDispatch: return "dispatch";
    case DecisionKind::kShed: return "shed";
    case DecisionKind::kReject: return "reject";
    case DecisionKind::kBrownout: return "brownout";
    case DecisionKind::kRetry: return "retry";
    case DecisionKind::kBudgetDeny: return "budget_deny";
    case DecisionKind::kHedge: return "hedge";
    case DecisionKind::kComplete: return "complete";
    case DecisionKind::kFailure: return "failure";
    case DecisionKind::kNodeCrash: return "node_crash";
    case DecisionKind::kNodeRepair: return "node_repair";
    case DecisionKind::kNodeSuspected: return "node_suspected";
    case DecisionKind::kNodeReadmitted: return "node_readmitted";
  }
  return "unknown";
}

std::string_view to_string(DecisionCause cause) {
  switch (cause) {
    case DecisionCause::kNone: return "none";
    case DecisionCause::kLocalService: return "local_service";
    case DecisionCause::kForwardService: return "forward_service";
    case DecisionCause::kNoPolicyTarget: return "no_policy_target";
    case DecisionCause::kShedStaticCap: return "static_cap";
    case DecisionCause::kShedQueueDelay: return "queue_delay";
    case DecisionCause::kShedAimd: return "aimd";
    case DecisionCause::kShedBrownout: return "brownout";
    case DecisionCause::kBufferOverflow: return "buffer_overflow";
    case DecisionCause::kBrownoutRaise: return "raise";
    case DecisionCause::kBrownoutEase: return "ease";
    case DecisionCause::kEntryNodeDown: return "entry_node_down";
    case DecisionCause::kServiceNodeDown: return "service_node_down";
    case DecisionCause::kPeerNodeDown: return "peer_node_down";
    case DecisionCause::kAttemptTimeout: return "attempt_timeout";
    case DecisionCause::kBudgetDeniedRetry: return "retry";
    case DecisionCause::kBudgetDeniedHedge: return "hedge";
    case DecisionCause::kHedgeFired: return "fired";
    case DecisionCause::kDeadlineExpired: return "deadline";
    case DecisionCause::kRetriesExhausted: return "retries_exhausted";
  }
  return "unknown";
}

std::uint64_t trace_digest(const DecisionTrace& trace) {
  constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h = kOffset;
  auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= kPrime;
    }
  };
  fold(trace.recorded);
  fold(trace.dropped);
  for (const auto& r : trace.records) {
    fold(static_cast<std::uint64_t>(r.time));
    fold(r.request);
    fold(static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.node)) << 32 |
         static_cast<std::uint32_t>(r.target));
    fold(static_cast<std::uint64_t>(r.detail));
    fold(static_cast<std::uint64_t>(r.attempt) << 32 |
         static_cast<std::uint64_t>(r.kind) << 16 |
         static_cast<std::uint64_t>(r.cause) << 8 | r.pass);
  }
  return h;
}

}  // namespace l2s::obs
