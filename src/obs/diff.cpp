#include "l2sim/obs/diff.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "l2sim/core/experiment.hpp"

namespace l2s::obs {

namespace {

/// Collects every record of side A.
class CollectorSink final : public DecisionSink {
 public:
  void on_decision(std::uint64_t /*index*/, const DecisionRecord& record) override {
    records.push_back(record);
  }
  std::vector<DecisionRecord> records;
};

/// Thrown by the comparator to abort side B's replay at the first
/// divergence; the exception unwinds cleanly through the scheduler (event
/// handlers are not noexcept) and is caught below.
struct DivergenceFound {};

/// Streams side B against side A's collected records, keeping a trailing
/// context window; throws DivergenceFound on the first mismatch (including
/// B emitting more records than A has).
class ComparatorSink final : public DecisionSink {
 public:
  ComparatorSink(const std::vector<DecisionRecord>& a, std::size_t context)
      : a_(a), context_(std::max<std::size_t>(context, 1)) {}

  void on_decision(std::uint64_t index, const DecisionRecord& record) override {
    seen_ = index + 1;
    if (trailing_.size() == context_) trailing_.pop_front();
    trailing_.push_back(record);
    if (index < a_.size() && a_[index] == record) return;
    diverged_at_ = index;
    throw DivergenceFound{};
  }

  [[nodiscard]] std::uint64_t seen() const { return seen_; }
  [[nodiscard]] std::uint64_t diverged_at() const { return diverged_at_; }
  [[nodiscard]] const std::deque<DecisionRecord>& trailing() const { return trailing_; }

 private:
  const std::vector<DecisionRecord>& a_;
  std::size_t context_;
  std::deque<DecisionRecord> trailing_;
  std::uint64_t seen_ = 0;
  std::uint64_t diverged_at_ = 0;
};

core::SimConfig with_sink(const core::ExperimentSpec& spec, DecisionSink* sink) {
  core::SimConfig sim = spec.sim;
  sim.obs.sink = sink;
  // Sink-only recording: the sink sees every record as it is emitted, so
  // nothing needs retaining in the ring.
  sim.obs.enabled = false;
  sim.obs.include_warmup = true;
  return sim;
}

DiffReport run_and_compare(const trace::Trace& trace_a, const trace::Trace& trace_b,
                           const core::ExperimentSpec& a, const core::ExperimentSpec& b,
                           const DiffOptions& options) {
  CollectorSink collect;
  (void)core::run_once(trace_a, with_sink(a, &collect), a.policy, a.set_shrink_seconds);

  ComparatorSink compare(collect.records, options.context);
  DiffReport report;
  report.records_a = collect.records.size();
  bool b_stopped_early = false;
  try {
    (void)core::run_once(trace_b, with_sink(b, &compare), b.policy, b.set_shrink_seconds);
  } catch (const DivergenceFound&) {
    b_stopped_early = true;
  }
  report.records_b = compare.seen();

  if (b_stopped_early) {
    report.diverged = true;
    report.first_divergence = compare.diverged_at();
    // diverged_at >= A's length means B agreed on every A record and kept
    // going: a pure length difference.
    report.length_only = report.first_divergence >= collect.records.size();
  } else if (compare.seen() < collect.records.size()) {
    // B finished with fewer records, all of them matching A's prefix.
    report.diverged = true;
    report.length_only = true;
    report.first_divergence = compare.seen();
  } else {
    return report;  // identical
  }

  // Context: B's trailing window ends at its last record (the divergent
  // one when not length-only); A's window ends at the same global index.
  // In the mismatch case both windows start at the same index — B stopped
  // the moment it disagreed, so records_b == first_divergence + 1.
  report.context_b.assign(compare.trailing().begin(), compare.trailing().end());
  const std::uint64_t a_end =
      std::min<std::uint64_t>(report.first_divergence + 1, collect.records.size());
  const std::uint64_t a_start = a_end > options.context ? a_end - options.context : 0;
  report.context_a.assign(
      collect.records.begin() + static_cast<std::ptrdiff_t>(a_start),
      collect.records.begin() + static_cast<std::ptrdiff_t>(a_end));
  report.context_start = a_start;
  return report;
}

}  // namespace

std::string format_record(std::uint64_t index, const DecisionRecord& rec) {
  std::ostringstream os;
  os << "#" << index << " t=" << simtime_to_seconds(rec.time) << "s"
     << (rec.pass == 0 ? " warmup" : "") << " " << to_string(rec.kind) << "/"
     << to_string(rec.cause) << " req=" << rec.request << " node=" << rec.node;
  if (rec.target >= 0) os << " target=" << rec.target;
  os << " attempt=" << rec.attempt;
  if (rec.detail != 0) os << " detail=" << rec.detail;
  return os.str();
}

std::string DiffReport::summary() const {
  std::ostringstream os;
  if (!diverged) {
    os << "decision streams identical: " << records_a << " records on both sides\n";
    return os.str();
  }
  if (length_only) {
    os << "streams agree record-for-record but differ in length: side A emitted "
       << records_a << " records, side B " << records_b
       << "; first index present on one side only: #" << first_divergence << "\n";
  } else {
    os << "first divergent decision record: #" << first_divergence << " (side A emitted "
       << records_a << " records, side B stopped at " << records_b << ")\n";
  }
  auto render = [&os](const char* side, const std::vector<DecisionRecord>& ctx,
                      std::uint64_t start, bool mark_last) {
    os << side << ":\n";
    for (std::size_t i = 0; i < ctx.size(); ++i) {
      os << "  " << (mark_last && i + 1 == ctx.size() ? ">" : " ") << " "
         << format_record(start + i, ctx[i]) << "\n";
    }
    if (ctx.empty()) os << "   (no records)\n";
  };
  render("side A", context_a, context_start, !length_only);
  // B's window always ends at its last emitted record, so its start index
  // is recoverable from the counts (== context_start in the mismatch case).
  render("side B", context_b, records_b - static_cast<std::uint64_t>(context_b.size()),
         !length_only);
  return os.str();
}

DiffReport diff_decisions(const core::ExperimentSpec& a, const core::ExperimentSpec& b,
                          const trace::Trace& trace, const DiffOptions& options) {
  return run_and_compare(trace, trace, a, b, options);
}

DiffReport diff_decisions(const core::ExperimentSpec& a, const core::ExperimentSpec& b,
                          const DiffOptions& options) {
  const trace::Trace trace_a = a.trace.realize();
  // Both sides usually describe the same workload; realize B's trace only
  // when its spec differs observably.
  const auto& ta = a.trace;
  const auto& tb = b.trace;
  bool same = ta.kind == tb.kind;
  if (same) {
    switch (ta.kind) {
      case core::TraceSpec::Kind::kPaper:
        same = ta.paper_name == tb.paper_name && ta.scale == tb.scale;
        break;
      case core::TraceSpec::Kind::kClfFile:
        same = ta.path == tb.path;
        break;
      case core::TraceSpec::Kind::kSynthetic:
        same = false;  // no cheap equality; realize both
        break;
    }
  }
  if (same) return run_and_compare(trace_a, trace_a, a, b, options);
  const trace::Trace trace_b = b.trace.realize();
  return run_and_compare(trace_a, trace_b, a, b, options);
}

}  // namespace l2s::obs
