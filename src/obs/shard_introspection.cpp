#include "l2sim/obs/shard_introspection.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <string>

#include "l2sim/common/table.hpp"
#include "l2sim/telemetry/registry.hpp"

namespace l2s::obs {

namespace {

using des::ShardIntrospection;

/// Representative value for log2 bucket b (v in [2^(b-1), 2^b)): the
/// mid-ish 1.5 * 2^(b-1), safely inside the matching telemetry bucket of a
/// {base = 1, growth = 2} histogram. Bucket 0 holds v == 0.
[[nodiscard]] double log2_bucket_rep(std::size_t b) {
  return b == 0 ? 0.0 : 1.5 * std::ldexp(1.0, static_cast<int>(b) - 1);
}

/// Telemetry histogram shaped to mirror the log2 buckets one-to-one
/// (bucket 0 = zeros, bucket b = [2^(b-1), 2^b), final bucket overflow).
[[nodiscard]] telemetry::HistogramParams log2_params() {
  telemetry::HistogramParams params;
  params.base = 1.0;
  params.growth = 2.0;
  params.buckets = ShardIntrospection::kLog2Buckets + 1;
  return params;
}

void import_log2(telemetry::Histogram& h, const std::vector<std::uint64_t>& counts) {
  for (std::size_t b = 0; b < counts.size(); ++b) h.add_count(log2_bucket_rep(b), counts[b]);
}

/// Quantile straight off a log2 histogram (lower bucket bound, same
/// convention as telemetry::Histogram::quantile).
[[nodiscard]] double log2_quantile(const std::vector<std::uint64_t>& counts, double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen > target) return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
  }
  return 0.0;
}

}  // namespace

void export_shard_introspection(telemetry::Registry& registry,
                                const des::ShardedScheduler& sched) {
  const ShardIntrospection* intro = sched.introspection();
  if (intro == nullptr) return;

  for (std::size_t s = 0; s < intro->shards.size(); ++s) {
    const ShardIntrospection::Shard& row = intro->shards[s];
    const telemetry::Labels shard_label = {{"shard", std::to_string(s)}};
    registry.counter("shard.window_events", shard_label).add(row.window_events);
    registry.counter("shard.active_windows", shard_label).add(row.active_windows);
    registry.counter("shard.posted", shard_label).add(row.posted);
    for (std::size_t d = 0; d < row.sent_to.size(); ++d) {
      if (row.sent_to[d] == 0) continue;
      registry
          .counter("shard.sent",
                   {{"src", std::to_string(s)}, {"dst", std::to_string(d)}})
          .add(row.sent_to[d]);
    }
    import_log2(registry.histogram("shard.window_occupancy", shard_label, log2_params()),
                row.occupancy_log2);
    import_log2(registry.histogram("shard.post_slack_us", shard_label, log2_params()),
                row.slack_log2_us);
    registry.gauge("shard.run_seconds", shard_label).set(row.run_seconds);

    telemetry::SampleSeries& timeline =
        registry.sample_series("shard.window_timeline", shard_label);
    for (const auto& [floor, events] : row.timeline) {
      timeline.add(floor, static_cast<double>(events));
    }
  }

  for (std::size_t w = 0; w < intro->worker_barrier_seconds.size(); ++w) {
    const telemetry::Labels worker_label = {{"worker", std::to_string(w)}};
    registry.gauge("worker.barrier_seconds", worker_label)
        .set(intro->worker_barrier_seconds[w]);
    registry.gauge("worker.run_seconds", worker_label).set(intro->worker_run_seconds[w]);
  }
}

void write_shard_report(std::ostream& out, const des::ShardedScheduler& sched) {
  const ShardIntrospection* intro = sched.introspection();
  if (intro == nullptr) {
    out << "shard introspection: not enabled\n";
    return;
  }

  out << "shard introspection: " << sched.shards() << " shards, "
      << sched.windows_executed() << " windows, lookahead "
      << simtime_to_seconds(sched.lookahead()) * 1e6 << " us\n\n";

  TextTable shards({"Shard", "Events", "Active win", "Occ p50", "Occ p99", "Posted",
                    "Slack p50 us", "Run s"});
  for (std::size_t s = 0; s < intro->shards.size(); ++s) {
    const ShardIntrospection::Shard& row = intro->shards[s];
    shards.cell(static_cast<long long>(s))
        .cell(static_cast<long long>(row.window_events))
        .cell(static_cast<long long>(row.active_windows))
        .cell(log2_quantile(row.occupancy_log2, 0.50), 0)
        .cell(log2_quantile(row.occupancy_log2, 0.99), 0)
        .cell(static_cast<long long>(row.posted))
        .cell(log2_quantile(row.slack_log2_us, 0.50), 0)
        .cell(row.run_seconds, 4)
        .end_row();
  }
  shards.print(out);
  out << '\n';

  // Cross-shard message matrix: who talks to whom, and how much. Only
  // printed when something was actually posted.
  std::uint64_t total_posted = 0;
  for (const auto& row : intro->shards) total_posted += row.posted;
  if (total_posted > 0) {
    std::vector<std::string> header = {"src\\dst"};
    for (std::size_t d = 0; d < intro->shards.size(); ++d) {
      header.push_back(std::to_string(d));
    }
    TextTable matrix(std::move(header));
    for (std::size_t s = 0; s < intro->shards.size(); ++s) {
      matrix.cell(std::to_string(s));
      for (const std::uint64_t c : intro->shards[s].sent_to) {
        matrix.cell(static_cast<long long>(c));
      }
      matrix.end_row();
    }
    matrix.print(out);
    out << '\n';
  }

  if (!intro->worker_barrier_seconds.empty()) {
    TextTable workers({"Worker", "Run s", "Barrier s", "Stall %"});
    for (std::size_t w = 0; w < intro->worker_barrier_seconds.size(); ++w) {
      const double run = intro->worker_run_seconds[w];
      const double stall = intro->worker_barrier_seconds[w];
      const double busy = run + stall;
      workers.cell(static_cast<long long>(w))
          .cell(run, 4)
          .cell(stall, 4)
          .cell(busy > 0.0 ? 100.0 * stall / busy : 0.0, 1)
          .end_row();
    }
    workers.print(out);
  }
}

}  // namespace l2s::obs
