#include "l2sim/obs/exporters.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "l2sim/common/error.hpp"
#include "l2sim/telemetry/exporters.hpp"

namespace l2s::obs {

namespace {

/// Chrome trace timestamps are microseconds; SimTime is nanoseconds.
[[nodiscard]] double to_us(SimTime t) { return static_cast<double>(t) / 1000.0; }

[[nodiscard]] int pid_of(const DecisionRecord& rec) { return rec.node >= 0 ? rec.node : 0; }

}  // namespace

void write_decisions_csv(std::ostream& out, const DecisionTrace& trace) {
  out << "index,time_s,pass,kind,cause,request,node,target,attempt,detail\n";
  out << std::setprecision(15);
  std::uint64_t index = trace.first_index();
  for (const DecisionRecord& rec : trace.records) {
    out << index++ << ',' << simtime_to_seconds(rec.time) << ','
        << static_cast<int>(rec.pass) << ',' << to_string(rec.kind) << ','
        << to_string(rec.cause) << ',' << rec.request << ',' << rec.node << ','
        << rec.target << ',' << rec.attempt << ',' << rec.detail << '\n';
  }
}

std::vector<std::string> decision_chrome_events(const DecisionTrace& trace) {
  std::vector<std::string> events;
  events.reserve(trace.records.size());
  std::uint64_t index = trace.first_index();
  for (const DecisionRecord& rec : trace.records) {
    std::ostringstream ev;
    ev << std::setprecision(15);
    ev << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << to_string(rec.kind) << '/'
       << to_string(rec.cause) << "\",\"pid\":" << pid_of(rec)
       << ",\"tid\":0,\"ts\":" << to_us(rec.time) << ",\"args\":{\"index\":" << index
       << ",\"request\":" << rec.request << ",\"target\":" << rec.target
       << ",\"attempt\":" << rec.attempt << ",\"detail\":" << rec.detail
       << ",\"pass\":" << static_cast<int>(rec.pass) << "}}";
    events.push_back(ev.str());

    // Cross-node dispatches additionally draw a flow arrow from the entry
    // node's hand-off track to the target node's storage track — the visual
    // join between "the dispatcher chose node T" and the work landing there.
    if (rec.kind == DecisionKind::kDispatch && rec.target >= 0 && rec.target != rec.node) {
      std::ostringstream fs;
      fs << std::setprecision(15);
      fs << "{\"ph\":\"s\",\"cat\":\"dispatch\",\"name\":\"dispatch\",\"id\":" << index
         << ",\"pid\":" << pid_of(rec) << ",\"tid\":1,\"ts\":" << to_us(rec.time) << "}";
      events.push_back(fs.str());
      std::ostringstream ff;
      ff << std::setprecision(15);
      ff << "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"dispatch\",\"name\":\"dispatch\",\"id\":"
         << index << ",\"pid\":" << rec.target << ",\"tid\":2,\"ts\":" << to_us(rec.time)
         << "}";
      events.push_back(ff.str());
    }
    ++index;
  }
  return events;
}

void write_chrome_trace_with_decisions(std::ostream& out,
                                       const telemetry::Snapshot& snapshot,
                                       const DecisionTrace& trace) {
  telemetry::write_chrome_trace(out, snapshot, decision_chrome_events(trace));
}

namespace {

template <typename Fn>
void export_to(const std::string& path, Fn writer) {
  std::ofstream out(path);
  if (!out) throw_error("obs: cannot open output file: " + path);
  writer(out);
}

}  // namespace

void export_decisions_csv(const std::string& path, const DecisionTrace& trace) {
  export_to(path, [&](std::ostream& out) { write_decisions_csv(out, trace); });
}

void export_chrome_trace_with_decisions(const std::string& path,
                                        const telemetry::Snapshot& snapshot,
                                        const DecisionTrace& trace) {
  export_to(path,
            [&](std::ostream& out) { write_chrome_trace_with_decisions(out, snapshot, trace); });
}

}  // namespace l2s::obs
