#include "l2sim/obs/recorder.hpp"

#include <utility>

namespace l2s::obs {

using core::engine::FailureKind;

FlightRecorder::FlightRecorder(const core::engine::EngineContext& ctx,
                               const ObsConfig& config)
    : ctx_(ctx), config_(config) {
  if (config_.capacity > 0) {
    // Bounded ring: reserve up front so steady-state appends never allocate.
    ring_.reserve(static_cast<std::size_t>(config_.capacity));
  }
}

void FlightRecorder::append(DecisionRecord record) {
  if (!config_.include_warmup && record.pass == 0) return;
  if (config_.sink != nullptr) config_.sink->on_decision(recorded_, record);
  ++recorded_;
  if (!config_.enabled) return;  // sink-only mode: nothing retained
  if (config_.capacity == 0 || ring_.size() < config_.capacity) {
    ring_.push_back(record);
    return;
  }
  // Branch instead of modulo: this is the steady-state path of a full
  // ring, and a 64-bit division per record is most of the recorder's cost.
  ring_[static_cast<std::size_t>(head_)] = record;
  if (++head_ == config_.capacity) head_ = 0;
}

void FlightRecorder::append_derived(DecisionKind kind, DecisionCause cause,
                                    std::uint64_t request, int node, int target,
                                    std::uint32_t attempt, std::int64_t detail,
                                    SimTime now) {
  DecisionRecord rec;
  rec.time = now;
  rec.request = request;
  rec.node = node;
  rec.target = target;
  rec.detail = detail;
  rec.attempt = attempt;
  rec.kind = kind;
  rec.cause = cause;
  rec.pass = ctx_.measured_pass ? 1 : 0;
  append(rec);
}

void FlightRecorder::on_decision(const DecisionRecord& record) { append(record); }

void FlightRecorder::on_request_completed(const cluster::Connection& conn, SimTime now) {
  append_derived(DecisionKind::kComplete,
                 conn.service_node == conn.entry_node ? DecisionCause::kLocalService
                                                      : DecisionCause::kForwardService,
                 conn.id, conn.entry_node, conn.service_node, conn.attempt,
                 conn.cache_hit ? 1 : 0, now);
}

void FlightRecorder::on_request_failed(const cluster::Connection* conn, FailureKind kind,
                                       SimTime now) {
  // Admission rejects/sheds arrive with conn == nullptr; those already have
  // richer explicit kReject/kShed records from AdmissionController, so only
  // terminal per-connection failures are derived here.
  if (conn == nullptr) return;
  append_derived(DecisionKind::kFailure,
                 kind == FailureKind::kDeadline ? DecisionCause::kDeadlineExpired
                                                : DecisionCause::kRetriesExhausted,
                 conn->id, conn->entry_node, conn->service_node, conn->attempt,
                 static_cast<std::int64_t>(conn->retries_used), now);
}

void FlightRecorder::on_node_crashed(int node, SimTime at) {
  append_derived(DecisionKind::kNodeCrash, DecisionCause::kNone, 0, node, -1, 0, 0, at);
}

void FlightRecorder::on_node_repaired(int node, SimTime at) {
  append_derived(DecisionKind::kNodeRepair, DecisionCause::kNone, 0, node, -1, 0, 0, at);
}

void FlightRecorder::on_node_detected(int node, SimTime at) {
  append_derived(DecisionKind::kNodeSuspected, DecisionCause::kNone, 0, node, -1, 0, 0,
                 at);
}

void FlightRecorder::on_node_readmitted(int node, SimTime at) {
  append_derived(DecisionKind::kNodeReadmitted, DecisionCause::kNone, 0, node, -1, 0, 0,
                 at);
}

void FlightRecorder::clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
}

DecisionTrace FlightRecorder::trace() const {
  DecisionTrace out;
  out.recorded = recorded_;
  out.capacity = config_.capacity;
  out.records.reserve(ring_.size());
  // head_ is the oldest slot once the ring has wrapped (it is the next
  // write position); before wrapping head_ stays 0 and the ring is already
  // oldest-first.
  const std::size_t n = ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    out.records.push_back(ring_[(static_cast<std::size_t>(head_) + i) % n]);
  }
  out.dropped = recorded_ - static_cast<std::uint64_t>(n);
  return out;
}

}  // namespace l2s::obs
