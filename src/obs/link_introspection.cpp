#include "l2sim/obs/link_introspection.hpp"

#include <ostream>
#include <vector>

#include "l2sim/common/table.hpp"
#include "l2sim/net/link.hpp"
#include "l2sim/telemetry/registry.hpp"

namespace l2s::obs {

namespace {

/// First node of each rack, in rack order — the representative the
/// rack-pair matrix probes (latency and hop count are rack-uniform for
/// every topology we ship, so one probe per pair suffices).
[[nodiscard]] std::vector<int> rack_representatives(const net::Topology& topo) {
  std::vector<int> rep(static_cast<std::size_t>(topo.racks()), -1);
  for (int n = 0; n < topo.nodes(); ++n) {
    const auto r = static_cast<std::size_t>(topo.rack_of(n));
    if (r < rep.size() && rep[r] < 0) rep[r] = n;
  }
  return rep;
}

}  // namespace

void export_link_utilization(telemetry::Registry& registry,
                             const net::Topology& topo, SimTime elapsed) {
  registry.counter("net.traversals").add(topo.traversals());
  for (std::size_t i = 0; i < topo.link_count(); ++i) {
    const net::Link& link = topo.link(i);
    const telemetry::Labels label = {{"link", link.name()}};
    registry.gauge("net.link.utilization", label).set(link.utilization(elapsed));
    registry.gauge("net.link.flow_utilization", label)
        .set(link.flow_utilization(elapsed));
    registry.counter("net.link.transfers", label).add(link.transfers());
    registry.counter("net.link.bytes", label).add(link.bytes_carried());
  }
}

void write_topology_report(std::ostream& out, const net::Topology& topo,
                           SimTime elapsed) {
  out << "topology: " << topo.name() << ", " << topo.nodes() << " nodes, "
      << topo.racks() << " racks, " << topo.link_count() << " links, "
      << topo.traversals() << " traversals\n\n";

  if (topo.link_count() > 0) {
    TextTable links({"Link", "Gbit/s", "Transfers", "MBytes", "Util %", "Flow util %"});
    for (std::size_t i = 0; i < topo.link_count(); ++i) {
      const net::Link& link = topo.link(i);
      links.cell(link.name())
          .cell(link.bits_per_s() / 1e9, 1)
          .cell(static_cast<long long>(link.transfers()))
          .cell(static_cast<double>(link.bytes_carried()) / 1e6, 2)
          .cell(100.0 * link.utilization(elapsed), 1)
          .cell(100.0 * link.flow_utilization(elapsed), 1)
          .end_row();
    }
    links.print(out);
    out << '\n';
  }

  // Rack-pair distance matrix: hop count and minimum latency between one
  // representative node of each rack — the geometry the pairwise shard
  // lookahead is derived from.
  const std::vector<int> rep = rack_representatives(topo);
  if (rep.size() > 1) {
    std::vector<std::string> header = {"rack\\rack"};
    for (std::size_t b = 0; b < rep.size(); ++b) header.push_back(std::to_string(b));
    TextTable matrix(std::move(header));
    for (std::size_t a = 0; a < rep.size(); ++a) {
      matrix.cell(std::to_string(a));
      for (std::size_t b = 0; b < rep.size(); ++b) {
        if (rep[a] < 0 || rep[b] < 0) {
          matrix.cell("-");
          continue;
        }
        const int hops = topo.hops(rep[a], rep[b]);
        const double us = simtime_to_seconds(topo.min_latency(rep[a], rep[b])) * 1e6;
        matrix.cell(std::to_string(hops) + "h/" + format_double(us, 1) + "us");
      }
      matrix.end_row();
    }
    matrix.print(out);
  }
}

}  // namespace l2s::obs
