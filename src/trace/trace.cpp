#include "l2sim/trace/trace.hpp"

#include <algorithm>

#include "l2sim/common/error.hpp"

namespace l2s::trace {

Trace::Trace(std::string name, storage::FileSet files, std::vector<Request> requests)
    : name_(std::move(name)), files_(std::move(files)), requests_(std::move(requests)) {
  for (const auto& r : requests_) {
    L2S_REQUIRE(r.file < files_.count());
    request_bytes_ += r.bytes;
  }
}

double Trace::avg_request_kb() const {
  if (requests_.empty()) return 0.0;
  return bytes_to_kib(request_bytes_) / static_cast<double>(requests_.size());
}

Trace Trace::truncated(std::uint64_t n) const {
  if (n >= requests_.size()) return *this;
  std::vector<Request> head(requests_.begin(),
                            requests_.begin() + static_cast<std::ptrdiff_t>(n));
  Trace t;
  t.name_ = name_;
  t.files_ = files_;
  t.requests_ = std::move(head);
  t.request_bytes_ = 0;
  for (const auto& r : t.requests_) t.request_bytes_ += r.bytes;
  return t;
}

}  // namespace l2s::trace
