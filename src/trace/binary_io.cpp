#include "l2sim/trace/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "l2sim/common/error.hpp"

namespace l2s::trace {
namespace {

constexpr char kMagic[4] = {'L', '2', 'S', 'T'};

// Bounds used to reject corrupt headers before attempting huge allocations.
constexpr std::uint64_t kMaxFiles = 1ull << 32;
constexpr std::uint64_t kMaxRequests = 1ull << 36;
constexpr std::uint32_t kMaxNameLength = 4096;

template <typename T>
void put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw_error("binary trace: truncated input");
  return value;
}

}  // namespace

void write_binary(const Trace& trace, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(out, kBinaryTraceVersion);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.name().size()));
  out.write(trace.name().data(), static_cast<std::streamsize>(trace.name().size()));

  put<std::uint64_t>(out, trace.files().count());
  for (FileId id = 0; id < trace.files().count(); ++id)
    put<std::uint64_t>(out, trace.files().size_of(id));

  put<std::uint64_t>(out, trace.request_count());
  for (const auto& r : trace.requests()) {
    put<std::uint32_t>(out, r.file);
    put<std::uint64_t>(out, r.bytes);
  }
  if (!out) throw_error("binary trace: write failed");
}

void write_binary_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw_error("binary trace: cannot open " + path + " for writing");
  write_binary(trace, out);
}

Trace read_binary(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw_error("binary trace: bad magic (not an .l2st file)");
  const auto version = get<std::uint32_t>(in);
  if (version != kBinaryTraceVersion)
    throw_error("binary trace: unsupported version " + std::to_string(version));

  const auto name_len = get<std::uint32_t>(in);
  if (name_len > kMaxNameLength) throw_error("binary trace: implausible name length");
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  if (!in) throw_error("binary trace: truncated name");

  const auto file_count = get<std::uint64_t>(in);
  if (file_count == 0 || file_count > kMaxFiles)
    throw_error("binary trace: implausible file count");
  storage::FileSet files;
  files.reserve(file_count);
  for (std::uint64_t i = 0; i < file_count; ++i) files.add(get<std::uint64_t>(in));

  const auto request_count = get<std::uint64_t>(in);
  if (request_count > kMaxRequests) throw_error("binary trace: implausible request count");
  std::vector<Request> requests;
  requests.reserve(request_count);
  for (std::uint64_t i = 0; i < request_count; ++i) {
    const auto file = get<std::uint32_t>(in);
    const auto bytes = get<std::uint64_t>(in);
    if (file >= file_count) throw_error("binary trace: request references unknown file");
    requests.push_back(Request{file, bytes});
  }
  return Trace(name, std::move(files), std::move(requests));
}

Trace read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw_error("binary trace: cannot open " + path);
  return read_binary(in);
}

}  // namespace l2s::trace
