#include "l2sim/trace/characterize.hpp"

#include <algorithm>
#include <cmath>

#include "l2sim/common/error.hpp"
#include "l2sim/zipf/harmonic.hpp"

namespace l2s::trace {

model::WorkloadStats TraceCharacteristics::to_workload_stats() const {
  model::WorkloadStats s;
  s.files = files;
  s.avg_file_kb = avg_file_kb;
  s.avg_request_kb = avg_request_kb;
  s.alpha = alpha;
  return s;
}

double fit_zipf_alpha(const std::vector<std::uint64_t>& frequencies) {
  std::vector<std::uint64_t> sorted(frequencies);
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  // Least squares of log(freq) on log(rank) over the informative region:
  // ranks with at least 2 requests (singletons flatten the tail and bias
  // the fit), skipping nothing at the head.
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  double n = 0.0;
  for (std::size_t r = 0; r < sorted.size(); ++r) {
    if (sorted[r] < 2) break;
    const double x = std::log(static_cast<double>(r + 1));
    const double y = std::log(static_cast<double>(sorted[r]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    n += 1.0;
  }
  if (n < 3.0) throw_error("fit_zipf_alpha: too few repeated files to fit alpha");
  const double denom = n * sxx - sx * sx;
  L2S_REQUIRE(denom > 0.0);
  const double slope = (n * sxy - sx * sy) / denom;
  return -slope;
}

double fit_zipf_alpha_mle(const std::vector<std::uint64_t>& frequencies) {
  std::vector<std::uint64_t> sorted(frequencies);
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  while (!sorted.empty() && sorted.back() == 0) sorted.pop_back();
  if (sorted.size() < 3) throw_error("fit_zipf_alpha_mle: too few ranked files");

  const double files = static_cast<double>(sorted.size());
  double total = 0.0;
  double sum_c_lnr = 0.0;
  for (std::size_t r = 0; r < sorted.size(); ++r) {
    total += static_cast<double>(sorted[r]);
    sum_c_lnr += static_cast<double>(sorted[r]) * std::log(static_cast<double>(r + 1));
  }

  const auto neg_log_likelihood = [&](double alpha) {
    return alpha * sum_c_lnr + total * std::log(zipf::harmonic(files, alpha));
  };

  // Golden-section search on [0.05, 3.5] (unimodal in alpha).
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = 0.05;
  double hi = 3.5;
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = neg_log_likelihood(x1);
  double f2 = neg_log_likelihood(x2);
  for (int iter = 0; iter < 100 && hi - lo > 1e-6; ++iter) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = neg_log_likelihood(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = neg_log_likelihood(x2);
    }
  }
  return 0.5 * (lo + hi);
}

TraceCharacteristics characterize(const Trace& trace) {
  TraceCharacteristics c;
  c.files = trace.files().count();
  c.avg_file_kb = trace.files().avg_kb();
  c.requests = trace.request_count();
  c.avg_request_kb = trace.avg_request_kb();
  c.working_set_bytes = trace.files().total_bytes();

  std::vector<std::uint64_t> freq(trace.files().count(), 0);
  for (const auto& r : trace.requests()) ++freq[r.file];
  // The MLE recovers the generating exponent to within a few hundredths;
  // the regression fit (kept available) is biased low by the singleton
  // tail, exactly like naive fits of real logs.
  c.alpha = fit_zipf_alpha_mle(freq);
  return c;
}

}  // namespace l2s::trace
