#include "l2sim/trace/clf_reader.hpp"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <unordered_map>

#include "l2sim/common/error.hpp"

namespace l2s::trace {

bool parse_clf_line(const std::string& line, std::string& method, std::string& path,
                    int& status, std::uint64_t& bytes) {
  // Locate the quoted request field.
  const auto q1 = line.find('"');
  if (q1 == std::string::npos) return false;
  const auto q2 = line.find('"', q1 + 1);
  if (q2 == std::string::npos) return false;
  const std::string request = line.substr(q1 + 1, q2 - q1 - 1);

  // request = METHOD SP path [SP protocol]
  const auto sp1 = request.find(' ');
  if (sp1 == std::string::npos) return false;
  method = request.substr(0, sp1);
  const auto sp2 = request.find(' ', sp1 + 1);
  path = sp2 == std::string::npos ? request.substr(sp1 + 1)
                                  : request.substr(sp1 + 1, sp2 - sp1 - 1);
  if (path.empty()) return false;
  // Strip query strings: the paper studies static content.
  if (const auto qm = path.find('?'); qm != std::string::npos) path.resize(qm);

  // After the closing quote: SP status SP bytes.
  std::size_t pos = q2 + 1;
  while (pos < line.size() && line[pos] == ' ') ++pos;
  char* end = nullptr;
  status = static_cast<int>(std::strtol(line.c_str() + pos, &end, 10));
  if (end == line.c_str() + pos) return false;
  pos = static_cast<std::size_t>(end - line.c_str());
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size() || line[pos] == '-') {
    bytes = 0;
    return true;
  }
  bytes = std::strtoull(line.c_str() + pos, &end, 10);
  return true;
}

Trace read_clf(std::istream& in, const std::string& name, ClfParseStats* stats) {
  ClfParseStats local{};
  std::unordered_map<std::string, FileId> path_ids;
  std::vector<Bytes> max_size;          // per file id
  std::vector<std::uint32_t> file_refs; // request sequence as file ids
  std::vector<Bytes> req_bytes;

  std::string line;
  while (std::getline(in, line)) {
    ++local.lines;
    std::string method;
    std::string path;
    int status = 0;
    std::uint64_t bytes = 0;
    if (!parse_clf_line(line, method, path, status, bytes)) {
      ++local.rejected_malformed;
      continue;
    }
    if (method != "GET") {
      ++local.rejected_method;
      continue;
    }
    if (status != 200 || bytes == 0) {
      ++local.rejected_status;
      continue;
    }
    auto [it, inserted] = path_ids.try_emplace(path, static_cast<FileId>(max_size.size()));
    if (inserted) max_size.push_back(0);
    const FileId id = it->second;
    max_size[id] = std::max(max_size[id], bytes);
    file_refs.push_back(id);
    req_bytes.push_back(bytes);
    ++local.accepted;
  }

  storage::FileSet files;
  files.reserve(max_size.size());
  for (const Bytes s : max_size) files.add(s);

  std::vector<Request> requests;
  requests.reserve(file_refs.size());
  for (std::size_t i = 0; i < file_refs.size(); ++i)
    requests.push_back(Request{file_refs[i], req_bytes[i]});

  if (stats != nullptr) *stats = local;
  return Trace(name, std::move(files), std::move(requests));
}

}  // namespace l2s::trace
