#include "l2sim/trace/synthetic.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "l2sim/common/error.hpp"
#include "l2sim/common/rng.hpp"
#include "l2sim/zipf/sampler.hpp"

namespace l2s::trace {
namespace {

constexpr double kMinFileKb = 0.25;
constexpr double kMaxFileKb = 8192.0;

/// Draw `count` lognormal sizes (KB) whose empirical mean is rescaled to
/// exactly `mean_kb`, clamped to a sane range.
std::vector<double> draw_sizes(std::uint64_t count, double mean_kb, double sigma,
                               Rng& rng) {
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  const double mu = std::log(mean_kb) - 0.5 * sigma * sigma;
  std::vector<double> sizes(count);
  double sum = 0.0;
  for (auto& s : sizes) {
    s = std::clamp(rng.next_lognormal(mu, sigma), kMinFileKb, kMaxFileKb);
    sum += s;
  }
  // Rescale so the average file size matches the spec exactly (clamping and
  // sampling noise shift it slightly).
  const double scale = mean_kb * static_cast<double>(count) / sum;
  for (auto& s : sizes) s = std::clamp(s * scale, kMinFileKb, kMaxFileKb);
  return sizes;
}

/// Reorder `sizes` (indexed by popularity rank, 0 = hottest) so that the
/// popularity-weighted mean approaches `target_kb`, by greedy swaps that
/// only ever move the mean toward the target. The multiset of sizes — and
/// hence the average *file* size and working set — is preserved exactly.
void tune_request_mean(std::vector<double>& sizes, const zipf::ZipfSampler& pop,
                       double target_kb, Rng& rng) {
  const std::uint64_t n = sizes.size();
  if (n < 2) return;
  std::vector<double> prob(n);
  double weighted = 0.0;
  for (std::uint64_t r = 0; r < n; ++r) {
    prob[r] = pop.probability(r);
    weighted += prob[r] * sizes[r];
  }
  const double tolerance = 0.005 * target_kb;
  const std::uint64_t max_attempts = 400 * n;
  for (std::uint64_t attempt = 0;
       attempt < max_attempts && std::abs(weighted - target_kb) > tolerance; ++attempt) {
    std::uint64_t a = rng.next_below(n);
    std::uint64_t b = rng.next_below(n);
    if (a == b) continue;
    if (prob[a] < prob[b]) std::swap(a, b);  // a is the hotter rank
    const double delta = (prob[a] - prob[b]) * (sizes[b] - sizes[a]);
    const bool helps = (weighted < target_kb) ? delta > 0.0 : delta < 0.0;
    if (!helps) continue;
    // Do not overshoot past the target by more than we improve.
    if (std::abs(weighted + delta - target_kb) >= std::abs(weighted - target_kb)) continue;
    std::swap(sizes[a], sizes[b]);
    weighted += delta;
  }
}

}  // namespace

namespace {

/// Log-uniform draw in [lo, hi] KB.
double log_uniform(Rng& rng, double lo, double hi) {
  const double u = rng.next_double();
  return lo * std::exp(u * std::log(hi / lo));
}

std::vector<double> draw_class_sizes(const SyntheticSpec& spec, Rng& rng) {
  double total_weight = 0.0;
  for (const auto& c : spec.size_classes) total_weight += c.weight;
  std::vector<double> sizes(spec.files);
  for (auto& s : sizes) {
    double pick = rng.next_double() * total_weight;
    const SyntheticSpec::SizeClass* chosen = &spec.size_classes.back();
    for (const auto& c : spec.size_classes) {
      pick -= c.weight;
      if (pick <= 0.0) {
        chosen = &c;
        break;
      }
    }
    s = log_uniform(rng, chosen->min_kb, chosen->max_kb);
  }
  return sizes;
}

}  // namespace

void SyntheticSpec::validate() const {
  if (files == 0) throw_error("SyntheticSpec: files must be positive");
  if (requests == 0) throw_error("SyntheticSpec: requests must be positive");
  if (avg_file_kb <= 0.0 || avg_request_kb <= 0.0)
    throw_error("SyntheticSpec: average sizes must be positive");
  if (alpha <= 0.0) throw_error("SyntheticSpec: alpha must be positive");
  if (size_sigma <= 0.0) throw_error("SyntheticSpec: size_sigma must be positive");
  if (temporal_locality < 0.0 || temporal_locality >= 1.0)
    throw_error("SyntheticSpec: temporal_locality must be in [0, 1)");
  if (temporal_mean_depth < 1.0)
    throw_error("SyntheticSpec: temporal_mean_depth must be >= 1");
  for (const auto& c : size_classes) {
    if (c.weight <= 0.0) throw_error("SyntheticSpec: size class weight must be positive");
    if (c.min_kb <= 0.0 || c.max_kb < c.min_kb)
      throw_error("SyntheticSpec: size class bounds must satisfy 0 < min <= max");
  }
}

Trace generate(const SyntheticSpec& spec) {
  spec.validate();
  Rng rng(spec.seed);
  Rng size_rng = rng.split();
  Rng tune_rng = rng.split();
  Rng req_rng = rng.split();

  const zipf::ZipfSampler pop(spec.files, spec.alpha);
  std::vector<double> sizes_kb;
  if (spec.size_classes.empty()) {
    sizes_kb = draw_sizes(spec.files, spec.avg_file_kb, spec.size_sigma, size_rng);
    tune_request_mean(sizes_kb, pop, spec.avg_request_kb, tune_rng);
  } else {
    // Class-based sizes: averages are emergent, no tuning.
    sizes_kb = draw_class_sizes(spec, size_rng);
  }

  storage::FileSet files;
  files.reserve(spec.files);
  for (const double kb : sizes_kb) files.add(kib_to_bytes(kb));

  // Temporal locality: with probability `temporal_locality` a request
  // repeats one of the recently requested files, at a geometric depth into
  // the recent history. Sampling from the raw history (rather than a true
  // LRU stack) keeps generation O(1) per request and yields the same kind
  // of inter-reference correlation real logs show; the marginal popularity
  // stays Zipf because history entries are themselves Zipf draws.
  constexpr std::size_t kHistoryCap = 4096;
  std::vector<FileId> history;
  history.reserve(kHistoryCap);
  std::size_t history_next = 0;
  const double depth_log =
      std::log(1.0 - 1.0 / std::max(1.0, spec.temporal_mean_depth));

  std::vector<Request> requests;
  requests.reserve(spec.requests);
  for (std::uint64_t i = 0; i < spec.requests; ++i) {
    FileId rank;
    if (spec.temporal_locality > 0.0 && !history.empty() &&
        req_rng.next_double() < spec.temporal_locality) {
      double u = req_rng.next_double();
      while (u >= 1.0) u = req_rng.next_double();
      auto depth = static_cast<std::size_t>(std::log1p(-u) / depth_log);
      if (depth >= history.size()) depth = history.size() - 1;
      // history is a ring buffer; depth 0 = most recent.
      const std::size_t idx =
          (history_next + history.size() - 1 - depth) % history.size();
      rank = history[idx];
    } else {
      rank = static_cast<FileId>(pop.sample(req_rng));
      // Only fresh draws enter the history: repeats re-referencing the
      // buffer would compound popularity and distort the marginal (the
      // fitted alpha would drift well above the spec).
      if (history.size() < kHistoryCap) {
        history.push_back(rank);
        history_next = history.size() % kHistoryCap;
      } else {
        history[history_next] = rank;
        history_next = (history_next + 1) % kHistoryCap;
      }
    }
    requests.push_back(Request{rank, files.size_of(rank)});
  }
  return Trace(spec.name, std::move(files), std::move(requests));
}

std::vector<SyntheticSpec> paper_trace_specs() {
  // Table 2 of the paper. size_sigma values are chosen so the generated
  // working sets land in the paper's reported 288-717 MB span. The specs
  // default to IID Zipf sampling (temporal_locality = 0): real logs also
  // carry temporal correlation, and bench/temporal_locality_study shows
  // how raising the knob moves a sequential 32 MB server's miss rate into
  // the paper's 9-28% band — but because every policy's cache benefits
  // equally, the *relative* Figure 7-10 results are reproduced best with
  // the stationary workload, so that is the default.
  auto make = [](const char* name, std::uint64_t files, double avg_file_kb,
                 std::uint64_t requests, double avg_request_kb, double alpha,
                 double sigma, std::uint64_t seed) {
    SyntheticSpec spec;
    spec.name = name;
    spec.files = files;
    spec.avg_file_kb = avg_file_kb;
    spec.requests = requests;
    spec.avg_request_kb = avg_request_kb;
    spec.alpha = alpha;
    spec.size_sigma = sigma;
    spec.seed = seed;
    return spec;
  };
  std::vector<SyntheticSpec> specs;
  specs.push_back(make("Calgary", 8397, 42.9, 567895, 19.7, 1.08, 1.6, 0xCA15A21));
  specs.push_back(make("Clarknet", 35885, 11.6, 3053525, 11.9, 0.78, 1.4, 0xC1A2F1E7));
  specs.push_back(make("NASA", 5500, 53.7, 3147719, 47.0, 0.91, 1.5, 0x8A5A0001));
  specs.push_back(make("Rutgers", 24098, 30.5, 535021, 26.2, 0.79, 1.5, 0x20000325));
  return specs;
}

SyntheticSpec specweb99_spec(std::uint64_t files, std::uint64_t requests,
                             std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "specweb99";
  spec.files = files;
  spec.requests = requests;
  spec.alpha = 1.0;  // SPECweb99 uses a Zipf file popularity within classes
  spec.seed = seed;
  spec.size_classes = {
      {0.35, 0.1, 1.0},     // class 0: under 1 KB
      {0.50, 1.0, 10.0},    // class 1: 1-10 KB (half the requests)
      {0.14, 10.0, 100.0},  // class 2: 10-100 KB
      {0.01, 100.0, 1024.0} // class 3: 100 KB-1 MB
  };
  return spec;
}

SyntheticSpec paper_trace_spec(const std::string& name) {
  auto lower = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
  };
  const std::string want = lower(name);
  for (const auto& spec : paper_trace_specs())
    if (lower(spec.name) == want) return spec;
  throw_error("unknown paper trace: " + name +
              " (expected Calgary, Clarknet, NASA or Rutgers)");
}

}  // namespace l2s::trace
