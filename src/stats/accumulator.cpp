#include "l2sim/stats/accumulator.hpp"

#include <algorithm>
#include <cmath>

#include "l2sim/common/error.hpp"

namespace l2s::stats {

void Accumulator::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Accumulator::mean() const {
  L2S_REQUIRE(count_ > 0);
  return mean_;
}

double Accumulator::variance() const {
  L2S_REQUIRE(count_ > 1);
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  L2S_REQUIRE(count_ > 0);
  return min_;
}

double Accumulator::max() const {
  L2S_REQUIRE(count_ > 0);
  return max_;
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Accumulator::reset() { *this = Accumulator{}; }

}  // namespace l2s::stats
