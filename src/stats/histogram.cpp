#include "l2sim/stats/histogram.hpp"

#include <cmath>
#include <sstream>

#include "l2sim/common/error.hpp"

namespace l2s::stats {

LogHistogram::LogHistogram(double base, double growth, std::size_t buckets)
    : base_(base), growth_(growth) {
  L2S_REQUIRE(base > 0.0 && growth > 1.0 && buckets >= 2);
  counts_.assign(buckets, 0);
}

std::size_t LogHistogram::bucket_for(double value) const {
  if (value < base_) return 0;
  const auto idx =
      static_cast<std::size_t>(std::log(value / base_) / std::log(growth_)) + 1;
  return idx >= counts_.size() ? counts_.size() - 1 : idx;
}

void LogHistogram::add(double value) {
  ++counts_[bucket_for(value)];
  ++total_;
}

std::uint64_t LogHistogram::bucket_count(std::size_t i) const {
  L2S_REQUIRE(i < counts_.size());
  return counts_[i];
}

double LogHistogram::bucket_lower_bound(std::size_t i) const {
  L2S_REQUIRE(i < counts_.size());
  if (i == 0) return 0.0;
  return base_ * std::pow(growth_, static_cast<double>(i - 1));
}

double LogHistogram::quantile(double q) const {
  L2S_REQUIRE(q >= 0.0 && q <= 1.0);
  L2S_REQUIRE(total_ > 0);
  const double target = q * static_cast<double>(total_);
  double seen = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += static_cast<double>(counts_[i]);
    if (seen >= target) return bucket_lower_bound(i);
  }
  return bucket_lower_bound(counts_.size() - 1);
}

std::string LogHistogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    os << ">= " << bucket_lower_bound(i) << ": " << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace l2s::stats
