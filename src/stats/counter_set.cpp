#include "l2sim/stats/counter_set.hpp"

#include <algorithm>

namespace l2s::stats {

void CounterSet::add(const std::string& name, std::uint64_t delta) {
  for (auto& [key, value] : items_) {
    if (key == name) {
      value += delta;
      return;
    }
  }
  items_.emplace_back(name, delta);
}

std::uint64_t CounterSet::get(const std::string& name) const {
  const auto it = std::find_if(items_.begin(), items_.end(),
                               [&name](const auto& kv) { return kv.first == name; });
  return it == items_.end() ? 0 : it->second;
}

void CounterSet::reset() { items_.clear(); }

}  // namespace l2s::stats
