#include "l2sim/stats/availability.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::stats {

void AvailabilityTracker::begin(SimTime start, SimTime interval, int nodes) {
  L2S_REQUIRE(interval >= 0 && nodes >= 1);
  start_ = start;
  interval_ = interval;
  completions_.clear();
  failures_.clear();
  retries_ = 0;
  crash_at_.assign(static_cast<std::size_t>(nodes), -1);
  repair_at_.assign(static_cast<std::size_t>(nodes), -1);
  detect_ms_.reset();
  readmit_ms_.reset();
}

void AvailabilityTracker::bump(std::vector<std::uint64_t>& buckets, SimTime t) {
  if (interval_ <= 0 || t < start_) return;
  const auto idx = static_cast<std::size_t>((t - start_) / interval_);
  if (buckets.size() <= idx) buckets.resize(idx + 1, 0);
  ++buckets[idx];
}

void AvailabilityTracker::record_completion(SimTime t) { bump(completions_, t); }

void AvailabilityTracker::record_failure(SimTime t) { bump(failures_, t); }

void AvailabilityTracker::record_crash(int node, SimTime t) {
  if (crash_at_.empty()) return;  // never armed (warm-up etc.)
  crash_at_[static_cast<std::size_t>(node)] = t;
}

void AvailabilityTracker::record_detection(int node, SimTime t) {
  if (crash_at_.empty()) return;
  SimTime& crashed = crash_at_[static_cast<std::size_t>(node)];
  if (crashed < 0) return;  // spurious (e.g. heartbeat loss): not a latency sample
  detect_ms_.add(simtime_to_seconds(t - crashed) * 1e3);
  crashed = -1;
}

void AvailabilityTracker::record_repair(int node, SimTime t) {
  if (repair_at_.empty()) return;
  repair_at_[static_cast<std::size_t>(node)] = t;
  // A repaired node is no longer a pending crash even if detection never
  // fired (undetected blip).
  crash_at_[static_cast<std::size_t>(node)] = -1;
}

void AvailabilityTracker::record_readmission(int node, SimTime t) {
  if (repair_at_.empty()) return;
  SimTime& repaired = repair_at_[static_cast<std::size_t>(node)];
  if (repaired < 0) return;
  readmit_ms_.add(simtime_to_seconds(t - repaired) * 1e3);
  repaired = -1;
}

std::vector<double> AvailabilityTracker::goodput_rps(SimTime end) const {
  std::vector<double> rps;
  if (interval_ <= 0 || end <= start_) return rps;
  const auto buckets = static_cast<std::size_t>((end - start_ + interval_ - 1) / interval_);
  const double per_bucket_s = simtime_to_seconds(interval_);
  rps.assign(buckets, 0.0);
  for (std::size_t i = 0; i < buckets && i < completions_.size(); ++i)
    rps[i] = static_cast<double>(completions_[i]) / per_bucket_s;
  return rps;
}

}  // namespace l2s::stats
