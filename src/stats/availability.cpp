#include "l2sim/stats/availability.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::stats {

void AvailabilityTracker::begin(SimTime start, SimTime interval, int nodes) {
  L2S_REQUIRE(interval >= 0 && nodes >= 1);
  start_ = start;
  interval_ = interval;
  // The timelines live in telemetry::BucketSeries, whose bucket indexing is
  // the exact integer arithmetic this class used before the migration.
  completions_.begin(start, interval);
  failures_.begin(start, interval);
  retries_ = 0;
  crash_at_.assign(static_cast<std::size_t>(nodes), -1);
  repair_at_.assign(static_cast<std::size_t>(nodes), -1);
  detect_ms_.reset();
  readmit_ms_.reset();
}

void AvailabilityTracker::record_completion(SimTime t) { completions_.bump(t); }

void AvailabilityTracker::record_failure(SimTime t) { failures_.bump(t); }

void AvailabilityTracker::record_crash(int node, SimTime t) {
  if (crash_at_.empty()) return;  // never armed (warm-up etc.)
  crash_at_[static_cast<std::size_t>(node)] = t;
}

void AvailabilityTracker::record_detection(int node, SimTime t) {
  if (crash_at_.empty()) return;
  SimTime& crashed = crash_at_[static_cast<std::size_t>(node)];
  if (crashed < 0) return;  // spurious (e.g. heartbeat loss): not a latency sample
  detect_ms_.add(simtime_to_seconds(t - crashed) * 1e3);
  crashed = -1;
}

void AvailabilityTracker::record_repair(int node, SimTime t) {
  if (repair_at_.empty()) return;
  repair_at_[static_cast<std::size_t>(node)] = t;
  // A repaired node is no longer a pending crash even if detection never
  // fired (undetected blip).
  crash_at_[static_cast<std::size_t>(node)] = -1;
}

void AvailabilityTracker::record_readmission(int node, SimTime t) {
  if (repair_at_.empty()) return;
  SimTime& repaired = repair_at_[static_cast<std::size_t>(node)];
  if (repaired < 0) return;
  readmit_ms_.add(simtime_to_seconds(t - repaired) * 1e3);
  repaired = -1;
}

std::vector<double> AvailabilityTracker::goodput_rps(SimTime end) const {
  return completions_.rate_per_second(end);
}

}  // namespace l2s::stats
