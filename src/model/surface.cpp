#include "l2sim/model/surface.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "l2sim/common/error.hpp"

namespace l2s::model {

double Surface::at(std::size_t hit_index, std::size_t size_index) const {
  L2S_REQUIRE(hit_index < values.size());
  L2S_REQUIRE(size_index < values[hit_index].size());
  return values[hit_index][size_index];
}

namespace {

// Locate `x` on an ascending axis: cell index `i` (with i+1 valid unless
// the axis has one point) and fractional position in [0, 1]. Coordinates
// at or beyond the last grid line clamp to the boundary — the naive
// upper_bound form hands back i == size() - 1 with frac > 0 there and
// reads one row past the end.
std::pair<std::size_t, double> locate(const std::vector<double>& axis, double x) {
  if (axis.size() == 1 || x <= axis.front()) return {0, 0.0};
  if (x >= axis.back()) return {axis.size() - 2, 1.0};
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  const auto i = static_cast<std::size_t>(it - axis.begin()) - 1;
  const double span = axis[i + 1] - axis[i];
  return {i, span > 0.0 ? (x - axis[i]) / span : 0.0};
}

}  // namespace

double Surface::value_at(double hit_rate, double size_kb) const {
  L2S_REQUIRE(!hit_rates.empty() && !sizes_kb.empty());
  L2S_REQUIRE(values.size() == hit_rates.size());
  const auto [i, fi] = locate(hit_rates, hit_rate);
  const auto [j, fj] = locate(sizes_kb, size_kb);
  const std::size_t i1 = std::min(i + 1, hit_rates.size() - 1);
  const std::size_t j1 = std::min(j + 1, sizes_kb.size() - 1);
  const double lo = at(i, j) * (1.0 - fj) + at(i, j1) * fj;
  const double hi = at(i1, j) * (1.0 - fj) + at(i1, j1) * fj;
  return lo * (1.0 - fi) + hi * fi;
}

double Surface::max_value() const {
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& row : values)
    for (double v : row) best = std::max(best, v);
  return best;
}

double Surface::min_value() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& row : values)
    for (double v : row) best = std::min(best, v);
  return best;
}

Surface::SideView Surface::side_view() const {
  SideView sv;
  sv.hit_rates = hit_rates;
  sv.max_over_sizes.reserve(values.size());
  sv.min_over_sizes.reserve(values.size());
  for (const auto& row : values) {
    sv.max_over_sizes.push_back(*std::max_element(row.begin(), row.end()));
    sv.min_over_sizes.push_back(*std::min_element(row.begin(), row.end()));
  }
  return sv;
}

std::vector<double> default_hit_grid() {
  std::vector<double> grid;
  for (int i = 0; i <= 20; ++i) grid.push_back(static_cast<double>(i) / 20.0);
  return grid;
}

std::vector<double> default_size_grid() {
  // 4..128 KB. The paper's axis nominally starts at 0, but the model's
  // throughput ratio diverges as S -> 0 (the oblivious server stays
  // disk-bound while the conscious one becomes CPU-bound), so the smallest
  // sampled size determines the reported peak; 4 KB lands the peak in the
  // paper's "up to 7-fold" range.
  std::vector<double> grid;
  for (int kb = 4; kb <= 128; kb += 4) grid.push_back(static_cast<double>(kb));
  return grid;
}

Surface sweep(const std::vector<double>& hit_rates, const std::vector<double>& sizes_kb,
              const std::function<double(double, double)>& fn) {
  L2S_REQUIRE(!hit_rates.empty() && !sizes_kb.empty());
  Surface s;
  s.hit_rates = hit_rates;
  s.sizes_kb = sizes_kb;
  s.values.resize(hit_rates.size());
  for (std::size_t i = 0; i < hit_rates.size(); ++i) {
    s.values[i].reserve(sizes_kb.size());
    for (double size : sizes_kb) s.values[i].push_back(fn(hit_rates[i], size));
  }
  return s;
}

Surface oblivious_surface(const ClusterModel& model, const std::vector<double>& hit_rates,
                          const std::vector<double>& sizes_kb) {
  return sweep(hit_rates, sizes_kb,
               [&model](double h, double s) { return model.oblivious(h, s).throughput; });
}

Surface conscious_surface(const ClusterModel& model, const std::vector<double>& hit_rates,
                          const std::vector<double>& sizes_kb) {
  return sweep(hit_rates, sizes_kb,
               [&model](double h, double s) { return model.conscious(h, s).throughput; });
}

Surface ratio_surface(const Surface& conscious, const Surface& oblivious) {
  L2S_REQUIRE(conscious.hit_rates == oblivious.hit_rates);
  L2S_REQUIRE(conscious.sizes_kb == oblivious.sizes_kb);
  Surface r;
  r.hit_rates = conscious.hit_rates;
  r.sizes_kb = conscious.sizes_kb;
  r.values.resize(conscious.values.size());
  for (std::size_t i = 0; i < conscious.values.size(); ++i) {
    r.values[i].reserve(conscious.values[i].size());
    for (std::size_t j = 0; j < conscious.values[i].size(); ++j)
      r.values[i].push_back(conscious.values[i][j] / oblivious.values[i][j]);
  }
  return r;
}

}  // namespace l2s::model
