#include "l2sim/model/cluster_model.hpp"

#include <algorithm>
#include <cmath>

#include "l2sim/common/error.hpp"
#include "l2sim/zipf/harmonic.hpp"
#include "l2sim/zipf/zipf.hpp"

namespace l2s::model {

ClusterModel::ClusterModel(ModelParams params) : params_(params) { params_.validate(); }

double ClusterModel::oblivious_cache_files(double avg_kb) const {
  L2S_REQUIRE(avg_kb > 0.0);
  return bytes_to_kib(params_.cache_bytes) / avg_kb;
}

double ClusterModel::conscious_cache_files(double avg_kb) const {
  L2S_REQUIRE(avg_kb > 0.0);
  return params_.conscious_cache_bytes() / 1024.0 / avg_kb;
}

double ClusterModel::conscious_hit_rate(double hlo, double avg_kb) const {
  if (hlo <= 0.0) return 0.0;
  const double n = oblivious_cache_files(avg_kb);
  const double n_lc = conscious_cache_files(avg_kb);
  // Hlc = z(min(n_lc, f), f) = Hlo * H(n_lc)/H(n) while n_lc <= f, and
  // saturates at 1 exactly when f < n_lc; the min() below covers both.
  const double ratio = zipf::harmonic(n_lc, params_.alpha) / zipf::harmonic(n, params_.alpha);
  return std::min(1.0, hlo * ratio);
}

double ClusterModel::replicated_hit_rate(double hlo, double avg_kb) const {
  if (hlo <= 0.0 || params_.replication <= 0.0) return 0.0;
  const double n = oblivious_cache_files(avg_kb);
  const double n_rep = params_.replication * n;
  const double ratio = zipf::harmonic(n_rep, params_.alpha) / zipf::harmonic(n, params_.alpha);
  return std::min(1.0, hlo * ratio);
}

double ClusterModel::forwarded_fraction(double hlo, double avg_kb) const {
  const double h = replicated_hit_rate(hlo, avg_kb);
  const double n = static_cast<double>(params_.nodes);
  return (n - 1.0) * (1.0 - h) / n;
}

double ClusterModel::virtual_population(double hlo, double avg_kb) const {
  const double n = oblivious_cache_files(avg_kb);
  return zipf::invert_population(n, hlo, params_.alpha);
}

queueing::JacksonNetwork ClusterModel::build_network(double hit_rate,
                                                     double forwarded_fraction,
                                                     double file_kb,
                                                     double transfer_kb) const {
  L2S_REQUIRE(hit_rate >= 0.0 && hit_rate <= 1.0);
  L2S_REQUIRE(forwarded_fraction >= 0.0 && forwarded_fraction <= 1.0);
  const double n = static_cast<double>(params_.nodes);
  const double q = forwarded_fraction;

  queueing::JacksonNetwork net;
  // Shared stations are (rate = 1/demand, visit = 1); per-node stations
  // are modeled as N replicas each visited with probability 1/N, so both
  // the bottleneck bound (min over stations of rate/visit per replica
  // group) and the low-load response (sum of service demands) are exact.
  auto add_shared = [&net](const std::string& name, double demand_seconds) {
    if (demand_seconds <= 0.0) return;  // station unused
    net.add_station({name, 1.0 / demand_seconds, 1.0, 1});
  };
  auto add_per_node = [&net, &n, this](const std::string& name, double demand_seconds) {
    if (demand_seconds <= 0.0) return;
    net.add_station({name, 1.0 / demand_seconds, 1.0 / n, params_.nodes});
  };

  add_shared("router", 1.0 / params_.router_rate(transfer_kb));
  add_per_node("ni-in", (1.0 + q) / params_.ni_request_rate);
  const double cpu_demand = 1.0 / params_.parse_rate + q / params_.forward_rate +
                            1.0 / params_.reply_rate(file_kb);
  add_per_node("cpu", cpu_demand);
  add_per_node("disk", (1.0 - hit_rate) / params_.disk_rate(file_kb));
  const double ni_out_demand =
      1.0 / params_.ni_reply_rate(file_kb) + q / params_.ni_request_rate;
  add_per_node("ni-out", ni_out_demand);
  return net;
}

ServerEval ClusterModel::evaluate(double hit_rate, double forwarded_fraction,
                                  double file_kb, double transfer_kb) const {
  const auto net = build_network(hit_rate, forwarded_fraction, file_kb, transfer_kb);
  ServerEval e;
  e.throughput = net.max_throughput();
  e.hit_rate = hit_rate;
  e.forwarded_fraction = forwarded_fraction;
  e.bottleneck = net.bottleneck();
  return e;
}

ServerEval ClusterModel::oblivious(double hlo, double avg_kb) const {
  L2S_REQUIRE(hlo >= 0.0 && hlo <= 1.0);
  return evaluate(hlo, 0.0, avg_kb, avg_kb);
}

ServerEval ClusterModel::conscious(double hlo, double avg_kb) const {
  L2S_REQUIRE(hlo >= 0.0 && hlo <= 1.0);
  const double hlc = conscious_hit_rate(hlo, avg_kb);
  const double h = replicated_hit_rate(hlo, avg_kb);
  const double n = static_cast<double>(params_.nodes);
  const double q = (n - 1.0) * (1.0 - h) / n;
  ServerEval e = evaluate(hlc, q, avg_kb, avg_kb);
  e.replicated_hit_rate = h;
  return e;
}

double imbalance_factor(double files, double alpha, int nodes, double replicated_files) {
  L2S_REQUIRE(files >= 1.0 && nodes >= 1);
  if (nodes == 1) return 1.0;
  const double total = zipf::harmonic(files, alpha);
  const double rep = std::clamp(replicated_files, 0.0, files);
  // Mass of the replicated hottest files is spread evenly over all nodes.
  const double replicated_mass = zipf::harmonic(rep, alpha) / total;

  // Remaining ranks are assigned round-robin by popularity: rank rep+1 to
  // node 0, rep+2 to node 1, ... Node 0 therefore holds the heaviest file
  // of every stripe of N. Summation is exact up to a cutoff; past it the
  // stripes are flat enough that every node gets tail_mass / N.
  constexpr double kExactRanks = 2e6;
  const double cutoff = std::min(files, rep + kExactRanks);
  double node0 = 0.0;
  double counted = 0.0;
  for (double r = rep + 1.0; r <= cutoff; r += static_cast<double>(nodes)) {
    const double p = std::pow(r, -alpha) / total;
    node0 += p;
    counted = r;
  }
  double tail_mass = 0.0;
  if (cutoff < files) {
    tail_mass = (zipf::harmonic(files, alpha) - zipf::harmonic(counted, alpha)) / total;
  }
  const double share0 = replicated_mass / nodes + node0 + tail_mass / nodes;
  return share0 * static_cast<double>(nodes);
}

}  // namespace l2s::model
