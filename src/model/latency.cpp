#include "l2sim/model/latency.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::model {
namespace {

struct Configured {
  queueing::JacksonNetwork net;
  double bound;
};

Configured configure(const ClusterModel& model, bool conscious, double hlo, double avg_kb) {
  Configured c;
  if (conscious) {
    const double hlc = model.conscious_hit_rate(hlo, avg_kb);
    const double h = model.replicated_hit_rate(hlo, avg_kb);
    const double n = static_cast<double>(model.params().nodes);
    const double q = (n - 1.0) * (1.0 - h) / n;
    c.net = model.build_network(hlc, q, avg_kb, avg_kb);
  } else {
    c.net = model.build_network(hlo, 0.0, avg_kb, avg_kb);
  }
  c.bound = c.net.max_throughput();
  return c;
}

}  // namespace

std::vector<LatencyPoint> latency_curve(const ClusterModel& model, bool conscious,
                                        double hlo, double avg_kb, int points,
                                        double max_fraction) {
  if (points < 1) throw_error("latency_curve: points must be >= 1");
  if (max_fraction <= 0.0 || max_fraction >= 1.0)
    throw_error("latency_curve: max_fraction must be in (0, 1)");
  const auto c = configure(model, conscious, hlo, avg_kb);

  std::vector<LatencyPoint> curve;
  curve.reserve(static_cast<std::size_t>(points));
  for (int i = 1; i <= points; ++i) {
    LatencyPoint p;
    p.utilization = max_fraction * static_cast<double>(i) / static_cast<double>(points);
    p.arrival_rate = p.utilization * c.bound;
    p.mean_response_s = c.net.solve(p.arrival_rate).mean_response;
    curve.push_back(p);
  }
  return curve;
}

double load_fraction_at_latency(const ClusterModel& model, bool conscious, double hlo,
                                double avg_kb, double limit_seconds) {
  if (limit_seconds <= 0.0) throw_error("load_fraction_at_latency: limit must be positive");
  const auto curve = latency_curve(model, conscious, hlo, avg_kb, 64, 0.99);
  for (const auto& p : curve)
    if (p.mean_response_s > limit_seconds) return p.utilization;
  return 1.0;
}

}  // namespace l2s::model
