#include "l2sim/model/parameters.hpp"

#include <sstream>

#include "l2sim/common/error.hpp"
#include "l2sim/common/table.hpp"

namespace l2s::model {

double ModelParams::router_rate(double transfer_kb) const {
  L2S_REQUIRE(transfer_kb > 0.0);
  return router_kb_per_s / transfer_kb;
}

double ModelParams::reply_rate(double file_kb) const {
  return 1.0 / (reply_overhead_s + file_kb / reply_kb_per_s);
}

double ModelParams::disk_rate(double file_kb) const {
  return 1.0 / (disk_overhead_s + file_kb / disk_kb_per_s);
}

double ModelParams::ni_reply_rate(double file_kb) const {
  return 1.0 / (ni_reply_overhead_s + file_kb / ni_reply_kb_per_s);
}

double ModelParams::conscious_cache_bytes() const {
  const double c = static_cast<double>(cache_bytes);
  return static_cast<double>(nodes) * (1.0 - replication) * c + replication * c;
}

void ModelParams::validate() const {
  if (nodes < 1) throw_error("ModelParams: nodes must be >= 1");
  if (replication < 0.0 || replication > 1.0)
    throw_error("ModelParams: replication must be in [0, 1]");
  if (alpha <= 0.0) throw_error("ModelParams: alpha must be positive");
  if (cache_bytes == 0) throw_error("ModelParams: cache must be nonzero");
  if (ni_request_rate <= 0.0 || parse_rate <= 0.0 || forward_rate <= 0.0 ||
      router_kb_per_s <= 0.0)
    throw_error("ModelParams: rates must be positive");
}

std::string ModelParams::describe() const {
  TextTable t({"Param", "Description", "Value"});
  t.cell("N").cell("Number of nodes").cell(static_cast<long long>(nodes)).end_row();
  t.cell("R").cell("Percentage of replication").cell(replication * 100.0, 0).end_row();
  t.cell("alpha").cell("Zipf constant").cell(alpha, 2).end_row();
  t.cell("mu_r").cell("Routing rate (ops/s)").cell(std::to_string(router_kb_per_s) + "/size").end_row();
  t.cell("mu_i").cell("Request service rate at NI (ops/s)").cell(ni_request_rate, 0).end_row();
  t.cell("mu_p").cell("Request read/parsing rate (ops/s)").cell(parse_rate, 0).end_row();
  t.cell("mu_f").cell("Request forwarding rate (ops/s)").cell(forward_rate, 0).end_row();
  t.cell("mu_m").cell("Reply rate, cached (ops/s)")
      .cell("1/(" + format_double(reply_overhead_s, 4) + " + S/" + format_double(reply_kb_per_s, 0) + ")")
      .end_row();
  t.cell("mu_d").cell("Disk access rate (ops/s)")
      .cell("1/(" + format_double(disk_overhead_s, 3) + " + S/" + format_double(disk_kb_per_s, 0) + ")")
      .end_row();
  t.cell("mu_o").cell("Reply service rate at NI (ops/s)")
      .cell("1/(" + format_double(ni_reply_overhead_s, 6) + " + S/" + format_double(ni_reply_kb_per_s, 0) + ")")
      .end_row();
  t.cell("C").cell("Cache space per node (MBytes)")
      .cell(static_cast<long long>(cache_bytes / kMiB))
      .end_row();
  return t.to_string();
}

}  // namespace l2s::model
