#include "l2sim/model/trace_model.hpp"

#include <algorithm>

#include "l2sim/common/error.hpp"
#include "l2sim/zipf/zipf.hpp"

namespace l2s::model {

TraceModel::TraceModel(ModelParams params, WorkloadStats stats)
    : params_(params), stats_(stats) {
  params_.validate();
  if (stats_.files == 0) throw_error("TraceModel: workload has no files");
  if (stats_.avg_file_kb <= 0.0 || stats_.avg_request_kb <= 0.0)
    throw_error("TraceModel: average sizes must be positive");
  if (stats_.alpha <= 0.0) throw_error("TraceModel: alpha must be positive");
}

// Cache occupancy is estimated with the *request-weighted* average size:
// the files a cache actually holds are the popular ones, whose mean size is
// the average requested size (e.g. Calgary: 19.7 KB requested vs 42.9 KB
// across all files). Using the plain file average would understate how
// many hot files fit and make the "upper bound" fall below the simulators.
double TraceModel::oblivious_hit_rate() const {
  const double cache_files = bytes_to_kib(params_.cache_bytes) / stats_.avg_request_kb;
  return zipf::z(cache_files, static_cast<double>(stats_.files), stats_.alpha);
}

double TraceModel::conscious_hit_rate(int nodes) const {
  ModelParams p = params_;
  p.nodes = nodes;
  const double cache_files = p.conscious_cache_bytes() / 1024.0 / stats_.avg_request_kb;
  return zipf::z(cache_files, static_cast<double>(stats_.files), stats_.alpha);
}

TraceBound TraceModel::bound(int nodes) const {
  L2S_REQUIRE(nodes >= 1);
  ModelParams p = params_;
  p.nodes = nodes;
  const ClusterModel model(p);
  const double files = static_cast<double>(stats_.files);

  TraceBound b;
  // Conscious: combined cache with R replication; h is the hit rate of the
  // replicated (hottest) slice of one node's memory.
  const double hlc = conscious_hit_rate(nodes);
  const double rep_files =
      p.replication * bytes_to_kib(p.cache_bytes) / stats_.avg_request_kb;
  const double h = zipf::z(std::min(rep_files, files), files, stats_.alpha);
  const double q = (static_cast<double>(nodes) - 1.0) * (1.0 - h) / static_cast<double>(nodes);
  b.conscious = model.evaluate(hlc, q, stats_.avg_request_kb, stats_.avg_request_kb);
  b.conscious.replicated_hit_rate = h;

  // Oblivious: every node caches independently from the same distribution.
  b.oblivious = model.evaluate(oblivious_hit_rate(), 0.0, stats_.avg_request_kb,
                               stats_.avg_request_kb);
  return b;
}

}  // namespace l2s::model
