#include "l2sim/storage/disk.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::storage {

Disk::Disk(des::Scheduler& sched, std::string name, DiskParams params)
    : params_(params), res_(sched, std::move(name)) {
  L2S_REQUIRE(params_.access_seconds >= 0.0 && params_.transfer_kb_per_s > 0.0);
}

SimTime Disk::read_time(Bytes bytes) const {
  const double seconds =
      params_.access_seconds + bytes_to_kib(bytes) / params_.transfer_kb_per_s;
  return seconds_to_simtime(seconds * slow_factor_);
}

void Disk::set_slow_factor(double factor) {
  L2S_REQUIRE(factor > 0.0);
  slow_factor_ = factor;
}

void Disk::read(Bytes bytes, des::EventFn done) {
  res_.submit(read_time(bytes), std::move(done));
}

}  // namespace l2s::storage
