#include "l2sim/storage/file_set.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::storage {

FileId FileSet::add(Bytes size) {
  L2S_REQUIRE(size > 0);
  sizes_.push_back(size);
  total_ += size;
  return static_cast<FileId>(sizes_.size() - 1);
}

Bytes FileSet::size_of(FileId id) const {
  L2S_REQUIRE(id < sizes_.size());
  return sizes_[id];
}

double FileSet::avg_kb() const {
  if (sizes_.empty()) return 0.0;
  return bytes_to_kib(total_) / static_cast<double>(sizes_.size());
}

}  // namespace l2s::storage
