#include "l2sim/core/config.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::core {

void SimConfig::validate() const {
  if (nodes < 1) throw_error("SimConfig: nodes must be >= 1");
  if (admission.buffer_slots_per_node < 1)
    throw_error("SimConfig: admission.buffer_slots_per_node must be >= 1");
  if (request_msg_bytes == 0) throw_error("SimConfig: request_msg_bytes must be positive");
  if (persistence.mean_requests_per_connection < 1.0)
    throw_error("SimConfig: persistence.mean_requests_per_connection must be >= 1");
  if (failure_detection_seconds < 0.0)
    throw_error("SimConfig: failure_detection_seconds must be nonnegative");
  if (failure_client_timeout_seconds < 0.0)
    throw_error("SimConfig: failure_client_timeout_seconds must be nonnegative");
  fault_plan.validate(nodes);
  detection.validate();
  telemetry.validate();
  if (retry.max_retries < 0) throw_error("SimConfig: retry.max_retries must be >= 0");
  if (retry.initial_backoff_seconds < 0.0 || retry.max_backoff_seconds < 0.0 ||
      retry.deadline_seconds < 0.0 || retry.attempt_timeout_seconds < 0.0)
    throw_error("SimConfig: retry times must be nonnegative");
  if (retry.backoff_multiplier < 1.0)
    throw_error("SimConfig: retry.backoff_multiplier must be >= 1");
  if (goodput_interval_seconds < 0.0)
    throw_error("SimConfig: goodput_interval_seconds must be nonnegative");
  if (fault_plan.lossy() && retry.deadline_seconds <= 0.0 &&
      retry.attempt_timeout_seconds <= 0.0)
    throw_error(
        "SimConfig: a lossy fault plan requires retry.deadline_seconds or "
        "retry.attempt_timeout_seconds (a lost hand-off would otherwise hold "
        "its admission slot forever)");
  if (engine.shards < EngineConfig::kAutoShards)
    throw_error(
        "SimConfig: engine.shards must be >= 0 or EngineConfig::kAutoShards");
  if (arrival.open_loop_rate < 0.0)
    throw_error("SimConfig: arrival.open_loop_rate must be nonnegative");
  if (arrival.dns_entry_skew < 0.0 || arrival.dns_entry_skew > 1.0)
    throw_error("SimConfig: arrival.dns_entry_skew must be in [0, 1]");
  if (!node_speed_factors.empty()) {
    if (node_speed_factors.size() != static_cast<std::size_t>(nodes))
      throw_error("SimConfig: node_speed_factors must have one entry per node");
    for (const double f : node_speed_factors)
      if (f <= 0.0) throw_error("SimConfig: node speed factors must be positive");
  }
}

}  // namespace l2s::core
