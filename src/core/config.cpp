#include "l2sim/core/config.hpp"

#include <algorithm>
#include <cmath>

#include "l2sim/common/error.hpp"

namespace l2s::core {

double ArrivalConfig::shape_multiplier(double t) const {
  switch (shape) {
    case ArrivalShape::kStationary:
      return 1.0;
    case ArrivalShape::kFlashCrowd: {
      // Trapezoid: ramp up over flash_ramp_seconds starting at
      // flash_at_seconds, hold at flash_factor, ramp back down. A zero ramp
      // is a step; an infinite hold never comes back down.
      const double since = t - flash_at_seconds;
      if (since < 0.0) return 1.0;
      if (since < flash_ramp_seconds)
        return 1.0 + (flash_factor - 1.0) * (since / flash_ramp_seconds);
      const double since_peak = since - flash_ramp_seconds;
      if (since_peak < flash_hold_seconds) return flash_factor;
      const double since_fall = since_peak - flash_hold_seconds;
      if (flash_ramp_seconds > 0.0 && since_fall < flash_ramp_seconds)
        return flash_factor -
               (flash_factor - 1.0) * (since_fall / flash_ramp_seconds);
      return 1.0;
    }
    case ArrivalShape::kDiurnal:
      return 1.0 + diurnal_amplitude *
                       std::sin(2.0 * 3.14159265358979323846 * t /
                                diurnal_period_seconds);
  }
  return 1.0;
}

double ArrivalConfig::peak_multiplier() const {
  switch (shape) {
    case ArrivalShape::kStationary:
      return 1.0;
    case ArrivalShape::kFlashCrowd:
      return std::max(1.0, flash_factor);
    case ArrivalShape::kDiurnal:
      return 1.0 + diurnal_amplitude;
  }
  return 1.0;
}

void SimConfig::validate() const {
  if (nodes < 1) throw_error("SimConfig: nodes must be >= 1");
  if (admission.buffer_slots_per_node < 1)
    throw_error("SimConfig: admission.buffer_slots_per_node must be >= 1");
  if (request_msg_bytes == 0) throw_error("SimConfig: request_msg_bytes must be positive");
  if (persistence.mean_requests_per_connection < 1.0)
    throw_error("SimConfig: persistence.mean_requests_per_connection must be >= 1");
  if (failure_detection_seconds < 0.0)
    throw_error("SimConfig: failure_detection_seconds must be nonnegative");
  if (failure_client_timeout_seconds < 0.0)
    throw_error("SimConfig: failure_client_timeout_seconds must be nonnegative");
  fault_plan.validate(nodes);
  detection.validate();
  telemetry.validate();
  topology.validate(nodes);
  if (retry.max_retries < 0) throw_error("SimConfig: retry.max_retries must be >= 0");
  if (retry.initial_backoff_seconds < 0.0 || retry.max_backoff_seconds < 0.0 ||
      retry.deadline_seconds < 0.0 || retry.attempt_timeout_seconds < 0.0)
    throw_error("SimConfig: retry times must be nonnegative");
  if (retry.backoff_multiplier < 1.0)
    throw_error("SimConfig: retry.backoff_multiplier must be >= 1");
  if (goodput_interval_seconds < 0.0)
    throw_error("SimConfig: goodput_interval_seconds must be nonnegative");
  if (fault_plan.lossy() && retry.deadline_seconds <= 0.0 &&
      retry.attempt_timeout_seconds <= 0.0)
    throw_error(
        "SimConfig: a lossy fault plan requires retry.deadline_seconds or "
        "retry.attempt_timeout_seconds (a lost hand-off would otherwise hold "
        "its admission slot forever)");
  if (engine.shards < EngineConfig::kAutoShards)
    throw_error(
        "SimConfig: engine.shards must be >= 0 or EngineConfig::kAutoShards");
  if (arrival.open_loop_rate < 0.0)
    throw_error("SimConfig: arrival.open_loop_rate must be nonnegative");
  if (arrival.dns_entry_skew < 0.0 || arrival.dns_entry_skew > 1.0)
    throw_error("SimConfig: arrival.dns_entry_skew must be in [0, 1]");
  if (arrival.shape != ArrivalShape::kStationary && arrival.open_loop_rate <= 0.0)
    throw_error("SimConfig: a non-stationary arrival shape requires open_loop_rate");
  if (arrival.shape == ArrivalShape::kFlashCrowd) {
    if (arrival.flash_at_seconds < 0.0 || arrival.flash_ramp_seconds < 0.0 ||
        arrival.flash_hold_seconds < 0.0)
      throw_error("SimConfig: arrival flash-crowd times must be nonnegative");
    if (arrival.flash_factor <= 0.0)
      throw_error("SimConfig: arrival.flash_factor must be positive");
  }
  if (arrival.shape == ArrivalShape::kDiurnal) {
    if (arrival.diurnal_period_seconds <= 0.0)
      throw_error("SimConfig: arrival.diurnal_period_seconds must be positive");
    if (arrival.diurnal_amplitude < 0.0 || arrival.diurnal_amplitude >= 1.0)
      throw_error("SimConfig: arrival.diurnal_amplitude must be in [0, 1)");
  }
  if (arrival.churn_period_seconds < 0.0)
    throw_error("SimConfig: arrival.churn_period_seconds must be nonnegative");
  if (overload.shedder == ShedderKind::kStaticCap && overload.static_cap < 1)
    throw_error("SimConfig: overload.static_cap must be >= 1 for kStaticCap");
  if (overload.target_delay_seconds <= 0.0 || overload.delay_window_seconds <= 0.0)
    throw_error("SimConfig: overload delay target/window must be positive");
  if (overload.aimd_increase <= 0.0 || overload.aimd_period_seconds <= 0.0)
    throw_error("SimConfig: overload AIMD increase/period must be positive");
  if (overload.aimd_decrease <= 0.0 || overload.aimd_decrease >= 1.0)
    throw_error("SimConfig: overload.aimd_decrease must be in (0, 1)");
  if (overload.aimd_min_window < 1)
    throw_error("SimConfig: overload.aimd_min_window must be >= 1");
  if (overload.budget_enabled() && overload.retry_budget_burst < 1.0)
    throw_error("SimConfig: overload.retry_budget_burst must be >= 1");
  if (overload.hedge_delay_seconds < 0.0)
    throw_error("SimConfig: overload.hedge_delay_seconds must be nonnegative");
  if (overload.hedging_enabled() && overload.max_hedges < 1)
    throw_error("SimConfig: overload.max_hedges must be >= 1 when hedging");
  if (overload.brownout &&
      (overload.brownout_forward_delay_seconds <= 0.0 ||
       overload.brownout_service_delay_seconds <=
           overload.brownout_forward_delay_seconds))
    throw_error(
        "SimConfig: brownout thresholds must satisfy 0 < forward < service");
  if (!node_speed_factors.empty()) {
    if (node_speed_factors.size() != static_cast<std::size_t>(nodes))
      throw_error("SimConfig: node_speed_factors must have one entry per node");
    for (const double f : node_speed_factors)
      if (f <= 0.0) throw_error("SimConfig: node speed factors must be positive");
  }
}

}  // namespace l2s::core
