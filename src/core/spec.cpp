#include "l2sim/core/spec.hpp"

#include <fstream>
#include <utility>

#include "l2sim/analytic/hierarchical.hpp"
#include "l2sim/common/error.hpp"
#include "l2sim/model/trace_model.hpp"
#include "l2sim/obs/exporters.hpp"
#include "l2sim/telemetry/exporters.hpp"
#include "l2sim/trace/clf_reader.hpp"

namespace l2s::core {

TraceSpec TraceSpec::paper(std::string name, double scale) {
  TraceSpec spec;
  spec.kind = Kind::kPaper;
  spec.paper_name = std::move(name);
  spec.scale = scale;
  return spec;
}

TraceSpec TraceSpec::clf(std::string path) {
  TraceSpec spec;
  spec.kind = Kind::kClfFile;
  spec.path = std::move(path);
  return spec;
}

TraceSpec TraceSpec::synth(trace::SyntheticSpec synthetic) {
  TraceSpec spec;
  spec.kind = Kind::kSynthetic;
  spec.synthetic = std::move(synthetic);
  return spec;
}

trace::Trace TraceSpec::realize() const {
  switch (kind) {
    case Kind::kPaper: {
      auto s = trace::paper_trace_spec(paper_name);
      s.requests =
          static_cast<std::uint64_t>(static_cast<double>(s.requests) * scale);
      return trace::generate(s);
    }
    case Kind::kClfFile: {
      std::ifstream in(path);
      if (!in) throw_error("TraceSpec: cannot open trace file: " + path);
      return trace::read_clf(in, path);
    }
    case Kind::kSynthetic:
      return trace::generate(synthetic);
  }
  throw_error("TraceSpec: unknown trace kind");
}

SimResult run_simulation(const ExperimentSpec& spec) {
  return run_simulation(spec, spec.trace.realize());
}

SimResult run_simulation(const ExperimentSpec& spec, const trace::Trace& trace) {
  SimConfig sim = spec.sim;
  if (!spec.output.timeline_csv_path.empty())
    sim.timeline_csv_path = spec.output.timeline_csv_path;
  if (spec.output.wants_telemetry()) sim.telemetry.enabled = true;
  if (spec.output.wants_obs()) sim.obs.enabled = true;
  SimResult result = run_once(trace, sim, spec.policy, spec.set_shrink_seconds);
  export_outputs(spec.output, result);
  return result;
}

void export_outputs(const OutputSpec& output, const SimResult& result) {
  if (result.telemetry != nullptr) {
    const telemetry::Snapshot& snap = *result.telemetry;
    if (!output.trace_json_path.empty()) {
      // With a decision log in hand, join it onto the span tracks —
      // decisions render as instant/flow events on the same timeline.
      if (result.decisions != nullptr) {
        obs::export_chrome_trace_with_decisions(output.trace_json_path, snap,
                                                *result.decisions);
      } else {
        telemetry::export_chrome_trace(output.trace_json_path, snap);
      }
    }
    if (!output.metrics_csv_path.empty())
      telemetry::export_metrics_csv(output.metrics_csv_path, snap);
    if (!output.timeseries_csv_path.empty())
      telemetry::export_timeseries_csv(output.timeseries_csv_path, snap);
    if (!output.spans_csv_path.empty())
      telemetry::export_spans_csv(output.spans_csv_path, snap);
  }
  if (result.decisions != nullptr && !output.decisions_csv_path.empty())
    obs::export_decisions_csv(output.decisions_csv_path, *result.decisions);
}

ModelResult run_model(const ExperimentSpec& spec) {
  return run_model(spec, spec.trace.realize());
}

ModelResult run_model(const ExperimentSpec& spec, const trace::Trace& trace) {
  // The analytic model solves the paper's Figure 2 queueing network: every
  // node behind one crossbar switch. Rack-aware and fat-tree interconnects
  // change the per-station demands in ways the model does not capture, so
  // specs carrying one are DES-only — run_simulation handles them.
  if (spec.sim.topology.kind != net::TopologyKind::kSingleSwitch)
    throw_error(
        "run_model: the analytic model covers only the single-switch "
        "topology (Figure 2); rack-aware and fat-tree interconnects are "
        "DES-only — use run_simulation, or drop --topology for the model");

  ModelResult r;
  r.characteristics = trace::characterize(trace);
  model::ModelParams params;
  params.cache_bytes = spec.sim.node.cache_bytes;
  params.replication = spec.model_replication;
  params.alpha = r.characteristics.alpha;

  if (spec.analytic.cache) {
    // Analytic fast path: Che cache level coupled to the queueing network
    // (l2s::analytic) — per-node hit rates from first principles, no
    // measured axis.
    analytic::HierarchicalParams hp;
    hp.model = params;
    hp.model.nodes = spec.sim.nodes;
    hp.workload = r.characteristics.to_workload_stats();
    hp.conscious = spec.policy != PolicyKind::kTraditional;
    hp.offered_rate_rps = spec.sim.arrival.open_loop_rate;
    hp.arrival = spec.sim.arrival;
    // The transient level covers the measured pass; for an open-loop spec
    // that is the time the trace takes to arrive at the nominal rate.
    if (spec.sim.arrival.open_loop_rate > 0.0)
      hp.horizon_seconds = static_cast<double>(r.characteristics.requests) /
                           spec.sim.arrival.open_loop_rate;
    hp.transient_samples = spec.analytic.transient_samples;
    const analytic::HierarchicalResult hr = analytic::solve_hierarchical(hp);
    r.analytic = true;
    r.throughput_rps = hr.max_throughput_rps;
    r.hit_rate = hr.hit_rate;
    r.per_node_hit = hr.per_node_hit;
    r.forwarded_fraction = hr.forwarded_fraction;
    r.served_rate_rps = hr.served_rate_rps;
    r.mean_response_seconds = hr.mean_response_seconds;
    r.bottleneck = hr.bottleneck;
    r.iterations = hr.iterations;
    return r;
  }

  const model::TraceModel tm(params, r.characteristics.to_workload_stats());
  r.throughput_rps = tm.bound(spec.sim.nodes).conscious.throughput;
  r.hit_rate = tm.conscious_hit_rate(spec.sim.nodes);
  return r;
}

ExperimentConfig to_experiment_config(const ExperimentSpec& spec) {
  ExperimentConfig cfg;
  cfg.sim = spec.sim;
  cfg.model_replication = spec.model_replication;
  cfg.set_shrink_seconds = spec.set_shrink_seconds;
  return cfg;
}

void apply_overload_cli(const CliArgs& args, ExperimentSpec& spec) {
  ArrivalConfig& arrival = spec.sim.arrival;
  if (args.has("arrival")) {
    const std::string shape = args.get("arrival");
    if (shape == "stationary") arrival.shape = ArrivalShape::kStationary;
    else if (shape == "flash") arrival.shape = ArrivalShape::kFlashCrowd;
    else if (shape == "diurnal") arrival.shape = ArrivalShape::kDiurnal;
    else
      throw_error("--arrival: unknown shape '" + shape +
                  "' (expected stationary, flash or diurnal)");
  }
  if (args.has("flash-at")) arrival.flash_at_seconds = args.get_double("flash-at", 0.0);
  if (args.has("flash-factor"))
    arrival.flash_factor = args.get_double("flash-factor", 3.0);
  if (args.has("flash-ramp"))
    arrival.flash_ramp_seconds = args.get_double("flash-ramp", 0.0);
  if (args.has("flash-hold"))
    arrival.flash_hold_seconds = args.get_double("flash-hold", 0.0);
  if (args.has("diurnal-period"))
    arrival.diurnal_period_seconds = args.get_double("diurnal-period", 10.0);
  if (args.has("diurnal-amp"))
    arrival.diurnal_amplitude = args.get_double("diurnal-amp", 0.5);
  if (args.has("churn-period"))
    arrival.churn_period_seconds = args.get_double("churn-period", 0.0);
  if (args.has("churn-stride"))
    arrival.churn_stride = static_cast<std::uint64_t>(args.get_int("churn-stride", 0));
  if (args.has("chaos-seed"))
    spec.sim.seed = static_cast<std::uint64_t>(args.get_int("chaos-seed", 0));

  OverloadConfig& ov = spec.sim.overload;
  if (args.has("shedder")) {
    const std::string shedder = args.get("shedder");
    if (shedder == "none") ov.shedder = ShedderKind::kNone;
    else if (shedder == "static") ov.shedder = ShedderKind::kStaticCap;
    else if (shedder == "codel") ov.shedder = ShedderKind::kQueueDelay;
    else if (shedder == "aimd") ov.shedder = ShedderKind::kAimd;
    else
      throw_error("--shedder: unknown kind '" + shedder +
                  "' (expected none, static, codel or aimd)");
  }
  if (args.has("static-cap"))
    ov.static_cap = static_cast<std::uint64_t>(args.get_int("static-cap", 0));
  if (args.has("target-delay"))
    ov.target_delay_seconds = args.get_double("target-delay", 0.05);
  if (args.has("retry-budget"))
    ov.retry_budget_ratio = args.get_double("retry-budget", -1.0);
  if (args.has("retry-burst"))
    ov.retry_budget_burst = args.get_double("retry-burst", 16.0);
  if (args.has("hedge-delay"))
    ov.hedge_delay_seconds = args.get_double("hedge-delay", 0.0);
  if (args.has("max-hedges")) ov.max_hedges = args.get_int("max-hedges", 1);
  if (args.has("brownout")) ov.brownout = true;
}

void apply_topology_cli(const CliArgs& args, ExperimentSpec& spec) {
  net::TopologyConfig& topo = spec.sim.topology;
  if (args.has("topology")) {
    const std::string kind = args.get("topology");
    if (kind == "single") topo.kind = net::TopologyKind::kSingleSwitch;
    else if (kind == "rack") topo.kind = net::TopologyKind::kRackAware;
    else if (kind == "fattree") topo.kind = net::TopologyKind::kFatTree;
    else
      throw_error("--topology: unknown kind '" + kind +
                  "' (expected single, rack or fattree)");
  }
  if (args.has("racks")) topo.racks = args.get_int("racks", 4);
  if (args.has("oversub")) topo.oversubscription = args.get_double("oversub", 4.0);
  if (args.has("fat-tree-k")) topo.fat_tree_k = args.get_int("fat-tree-k", 4);
  if (args.has("segment-bytes"))
    topo.segment_bytes = static_cast<Bytes>(args.get_int("segment-bytes", 16 * 1024));
  if (args.has("flow-level")) topo.flow_level = true;
}

}  // namespace l2s::core
