#include "l2sim/core/report.hpp"

#include <ostream>

#include "l2sim/common/csv.hpp"
#include "l2sim/common/error.hpp"
#include "l2sim/common/table.hpp"

namespace l2s::core {

void print_throughput_figure(std::ostream& os, const FigureSeries& fig) {
  os << "Throughputs for the " << fig.trace_name << " trace (requests/sec)\n";
  TextTable t({"Nodes", "model", "L2S", "LARD", "trad"});
  for (std::size_t i = 0; i < fig.node_counts.size(); ++i) {
    t.cell(static_cast<long long>(fig.node_counts[i]))
        .cell(fig.model_rps[i], 0)
        .cell(fig.l2s[i].throughput_rps, 0)
        .cell(fig.lard[i].throughput_rps, 0)
        .cell(fig.traditional[i].throughput_rps, 0)
        .end_row();
  }
  t.print(os);
}

void write_throughput_csv(const FigureSeries& fig, const std::string& dir,
                          const std::string& name) {
  CsvWriter csv(dir, name, {"nodes", "model", "l2s", "lard", "trad"});
  for (std::size_t i = 0; i < fig.node_counts.size(); ++i) {
    csv.add_row({std::to_string(fig.node_counts[i]), format_double(fig.model_rps[i], 1),
                 format_double(fig.l2s[i].throughput_rps, 1),
                 format_double(fig.lard[i].throughput_rps, 1),
                 format_double(fig.traditional[i].throughput_rps, 1)});
  }
}

double metric_value(const SimResult& r, const std::string& metric) {
  if (metric == "missrate") return r.miss_rate * 100.0;
  if (metric == "idle") return r.cpu_idle_fraction * 100.0;
  if (metric == "forwarded") return r.forwarded_fraction * 100.0;
  if (metric == "response") return r.mean_response_ms;
  if (metric == "throughput") return r.throughput_rps;
  if (metric == "loadcov") return r.load_cov;
  if (metric == "failed") return static_cast<double>(r.failed);
  if (metric == "retry_amp") return r.retry_amplification;
  if (metric == "detection_ms") return r.detection_latency_ms;
  if (metric == "recover_ms") return r.time_to_recover_ms;
  throw_error("unknown metric: " + metric);
}

void print_metric_figure(std::ostream& os, const FigureSeries& fig,
                         const std::string& metric) {
  os << metric << " for the " << fig.trace_name << " trace\n";
  TextTable t({"Nodes", "L2S", "LARD", "trad"});
  for (std::size_t i = 0; i < fig.node_counts.size(); ++i) {
    t.cell(static_cast<long long>(fig.node_counts[i]))
        .cell(metric_value(fig.l2s[i], metric), 2)
        .cell(metric_value(fig.lard[i], metric), 2)
        .cell(metric_value(fig.traditional[i], metric), 2)
        .end_row();
  }
  t.print(os);
}

}  // namespace l2s::core
