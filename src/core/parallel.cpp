#include "l2sim/core/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "l2sim/common/env.hpp"
#include "l2sim/common/error.hpp"
#include "l2sim/telemetry/registry.hpp"

namespace l2s::core {

unsigned engine_threads(const SimConfig& sim) {
  // Sequential-merge sharding executes on the calling thread; when the
  // threaded cluster engine arrives this becomes the shard-worker count.
  (void)sim;
  return 1;
}

unsigned compute_worker_threads(std::size_t jobs, unsigned per_job_threads,
                                unsigned budget) {
  if (jobs == 0) return 0;
  per_job_threads = std::max(1u, per_job_threads);
  budget = std::max(1u, budget);
  const unsigned fit = std::max(1u, budget / per_job_threads);
  return std::min<unsigned>(fit, static_cast<unsigned>(jobs));
}

std::shared_ptr<const telemetry::Snapshot> merge_telemetry(
    const std::vector<SimResult>& results) {
  std::shared_ptr<telemetry::Snapshot> merged;
  for (const SimResult& r : results) {
    if (r.telemetry == nullptr) continue;
    if (merged == nullptr) {
      merged = std::make_shared<telemetry::Snapshot>(*r.telemetry);
    } else {
      merged->merge(*r.telemetry);
    }
  }
  return merged;
}

std::vector<SimResult> run_parallel(const std::vector<SimJob>& jobs, unsigned threads) {
  for (const auto& job : jobs)
    if (job.trace == nullptr) throw_error("run_parallel: job without a trace");

  std::vector<SimResult> results(jobs.size());
  if (jobs.empty()) return results;

  // Shared thread budget: a worker running a simulation that itself uses
  // k engine threads occupies k slots, so jobs x k never exceeds the
  // budget (the pre-budget code oversubscribed as soon as jobs used
  // internal parallelism).
  unsigned per_job = 1;
  for (const auto& job : jobs) per_job = std::max(per_job, engine_threads(job.sim));
  if (threads == 0) threads = thread_budget();
  threads = compute_worker_threads(jobs.size(), per_job, threads);

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::size_t first_error_index = 0;
  std::mutex error_mutex;

  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size() || failed.load()) return;
      try {
        const SimJob& job = jobs[i];
        ClusterSimulation sim(job.sim, *job.trace,
                              make_policy(job.kind, job.set_shrink_seconds));
        results[i] = sim.run();
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
          first_error_index = i;
        }
        failed.store(true);
        return;
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (first_error) {
    // Rethrow with the failing job identified: a sweep can hold dozens of
    // (trace, nodes, policy) combinations, and "bad parameter" alone does
    // not say which one to re-run.
    const SimJob& job = jobs[first_error_index];
    std::ostringstream context;
    context << "run_parallel: job " << first_error_index << " (trace="
            << job.trace->name() << ", nodes=" << job.sim.nodes
            << ", policy=" << policy_kind_name(job.kind) << ") failed";
    try {
      std::rethrow_exception(first_error);
    } catch (...) {
      std::throw_with_nested(Error(context.str()));
    }
  }
  return results;
}

FigureSeries run_throughput_figure_parallel(const trace::Trace& trace,
                                            const ExperimentConfig& cfg,
                                            unsigned threads) {
  FigureSeries fig;
  fig.trace_name = trace.name();
  fig.characteristics = trace::characterize(trace);
  fig.node_counts = cfg.node_counts;
  fig.model_rps = model_series(fig.characteristics, cfg);

  std::vector<SimJob> jobs;
  for (const int nodes : cfg.node_counts) {
    for (const auto kind :
         {PolicyKind::kL2s, PolicyKind::kLard, PolicyKind::kTraditional}) {
      SimJob job;
      job.trace = &trace;
      job.sim = cfg.sim;
      job.sim.nodes = nodes;
      job.kind = kind;
      job.set_shrink_seconds = cfg.set_shrink_seconds;
      jobs.push_back(job);
    }
  }
  auto results = run_parallel(jobs, threads);
  for (std::size_t i = 0; i < cfg.node_counts.size(); ++i) {
    fig.l2s.push_back(std::move(results[3 * i]));
    fig.lard.push_back(std::move(results[3 * i + 1]));
    fig.traditional.push_back(std::move(results[3 * i + 2]));
  }
  return fig;
}

}  // namespace l2s::core
