#include "l2sim/core/engine/retry.hpp"

#include <algorithm>

#include "l2sim/core/engine/admission.hpp"
#include "l2sim/core/engine/dispatch.hpp"
#include "l2sim/core/engine/service_path.hpp"

namespace l2s::core::engine {

void RetryManager::fail_connection(const ConnPtr& conn, FailureKind kind,
                                   SimTime slot_hold) {
  if (conn->state == ConnectionState::kDone) return;
  ctx_.service->release_service_count(conn);
  conn->state = ConnectionState::kDone;
  ctx_.observers->on_request_failed(conn.get(), kind, ctx_.now());
  ctx_.admission->release_after(slot_hold);
}

void RetryManager::abort_connection(const ConnPtr& conn) {
  if (conn->state == ConnectionState::kDone) return;
  if (conn->retries_used < static_cast<std::uint32_t>(ctx_.cfg().retry.max_retries)) {
    ctx_.service->release_service_count(conn);
    schedule_retry(conn);
    return;
  }
  // The client holds the connection until its timeout expires; only then
  // does the admission slot free up for the next request.
  fail_connection(conn, FailureKind::kRetriesExhausted,
                  seconds_to_simtime(ctx_.cfg().failure_client_timeout_seconds));
}

void RetryManager::schedule_retry(const ConnPtr& conn) {
  ++conn->retries_used;
  ++conn->attempt;
  ctx_.observers->on_retry_scheduled(ctx_.now());
  conn->state = ConnectionState::kRetryBackoff;
  const auto& rp = ctx_.cfg().retry;
  double backoff = rp.initial_backoff_seconds;
  for (std::uint32_t i = 1; i < conn->retries_used; ++i) backoff *= rp.backoff_multiplier;
  backoff = std::min(backoff, rp.max_backoff_seconds);
  const auto att = conn->attempt;
  ctx_.sched->after(seconds_to_simtime(backoff), [this, conn, att]() {
    if (attempt_stale(conn, att)) return;  // the deadline fired during backoff
    ctx_.dispatcher->start_attempt(conn);
  });
}

void RetryManager::arm_deadline(const ConnPtr& conn) {
  const double ddl = ctx_.cfg().retry.deadline_seconds;
  if (ddl <= 0.0) return;
  conn->deadline_at = ctx_.now() + seconds_to_simtime(ddl);
  const SimTime target = conn->deadline_at;
  ctx_.sched->after(seconds_to_simtime(ddl), [this, conn, target]() {
    if (conn->state == ConnectionState::kDone) return;
    if (conn->deadline_at != target) return;  // a later request re-armed it
    fail_connection(conn, FailureKind::kDeadline, 0);
  });
}

void RetryManager::arm_attempt_timeout(const ConnPtr& conn) {
  if (ctx_.cfg().retry.attempt_timeout_seconds <= 0.0) return;
  const auto att = conn->attempt;
  ctx_.sched->after(seconds_to_simtime(ctx_.cfg().retry.attempt_timeout_seconds),
                    [this, conn, att]() {
                      if (attempt_stale(conn, att)) return;
                      // The attempt hangs (lost hand-off, dead node, glacial
                      // queue): abandon it and retry or give up.
                      ctx_.service->release_service_count(conn);
                      if (conn->retries_used <
                          static_cast<std::uint32_t>(ctx_.cfg().retry.max_retries)) {
                        schedule_retry(conn);
                      } else {
                        fail_connection(conn, FailureKind::kRetriesExhausted, 0);
                      }
                    });
}

}  // namespace l2s::core::engine
