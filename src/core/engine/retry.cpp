#include "l2sim/core/engine/retry.hpp"

#include <algorithm>

#include "l2sim/core/engine/admission.hpp"
#include "l2sim/core/engine/dispatch.hpp"
#include "l2sim/core/engine/overload.hpp"
#include "l2sim/core/engine/service_path.hpp"

namespace l2s::core::engine {

void RetryManager::fail_connection(const ConnPtr& conn, FailureKind kind,
                                   SimTime slot_hold) {
  if (conn->state == ConnectionState::kDone) return;
  ctx_.service->release_service_count(conn);
  conn->state = ConnectionState::kDone;
  ctx_.overload->note_failure(conn.get(), kind, ctx_.now());
  ctx_.observers->on_request_failed(conn.get(), kind, ctx_.now());
  ctx_.admission->release_after(slot_hold);
}

void RetryManager::abort_connection(const ConnPtr& conn, obs::DecisionCause cause) {
  if (conn->state == ConnectionState::kDone) return;
  const bool retries_left =
      conn->retries_used < static_cast<std::uint32_t>(ctx_.cfg().retry.max_retries);
  if (retries_left && ctx_.overload->try_spend_retry_token()) {
    ctx_.service->release_service_count(conn);
    schedule_retry(conn, cause);
    return;
  }
  // Retries remained but the budget had no token: that distinction (deny
  // vs. genuinely exhausted) is exactly what the decision log is for.
  if (retries_left) {
    ctx_.note_decision(obs::DecisionKind::kBudgetDeny, obs::DecisionCause::kBudgetDeniedRetry,
                       conn->id, conn->entry_node, -1, conn->attempt,
                       static_cast<std::int64_t>(cause));
  }
  // The client holds the connection until its timeout expires; only then
  // does the admission slot free up for the next request.
  fail_connection(conn, FailureKind::kRetriesExhausted,
                  seconds_to_simtime(ctx_.cfg().failure_client_timeout_seconds));
}

void RetryManager::schedule_retry(const ConnPtr& conn, obs::DecisionCause cause) {
  ++conn->retries_used;
  ++conn->attempt;
  ctx_.note_decision(obs::DecisionKind::kRetry, cause, conn->id, conn->entry_node, -1,
                     conn->attempt, static_cast<std::int64_t>(conn->retries_used));
  ctx_.observers->on_retry_scheduled(ctx_.now());
  conn->state = ConnectionState::kRetryBackoff;
  const auto& rp = ctx_.cfg().retry;
  double backoff = rp.initial_backoff_seconds;
  for (std::uint32_t i = 1; i < conn->retries_used; ++i) backoff *= rp.backoff_multiplier;
  backoff = std::min(backoff, rp.max_backoff_seconds);
  const auto att = conn->attempt;
  ctx_.sched->after(seconds_to_simtime(backoff), [this, conn, att]() {
    if (attempt_stale(conn, att)) return;  // the deadline fired during backoff
    ctx_.dispatcher->start_attempt(conn);
  });
}

void RetryManager::arm_deadline(const ConnPtr& conn) {
  const double ddl = ctx_.cfg().retry.deadline_seconds;
  if (ddl <= 0.0) return;
  conn->deadline_at = ctx_.now() + seconds_to_simtime(ddl);
  const SimTime target = conn->deadline_at;
  ctx_.sched->after(seconds_to_simtime(ddl), [this, conn, target]() {
    if (conn->state == ConnectionState::kDone) return;
    if (conn->deadline_at != target) return;  // a later request re-armed it
    fail_connection(conn, FailureKind::kDeadline, 0);
  });
}

void RetryManager::arm_attempt_timeout(const ConnPtr& conn) {
  if (ctx_.cfg().retry.attempt_timeout_seconds <= 0.0) return;
  const auto att = conn->attempt;
  ctx_.sched->after(seconds_to_simtime(ctx_.cfg().retry.attempt_timeout_seconds),
                    [this, conn, att]() {
                      if (attempt_stale(conn, att)) return;
                      // The attempt hangs (lost hand-off, dead node, glacial
                      // queue): abandon it and retry or give up.
                      ctx_.service->release_service_count(conn);
                      const bool retries_left =
                          conn->retries_used <
                          static_cast<std::uint32_t>(ctx_.cfg().retry.max_retries);
                      if (retries_left && ctx_.overload->try_spend_retry_token()) {
                        schedule_retry(conn, obs::DecisionCause::kAttemptTimeout);
                      } else {
                        if (retries_left) {
                          ctx_.note_decision(
                              obs::DecisionKind::kBudgetDeny,
                              obs::DecisionCause::kBudgetDeniedRetry, conn->id,
                              conn->entry_node, -1, conn->attempt,
                              static_cast<std::int64_t>(
                                  obs::DecisionCause::kAttemptTimeout));
                        }
                        fail_connection(conn, FailureKind::kRetriesExhausted, 0);
                      }
                    });
}

void RetryManager::arm_hedge(const ConnPtr& conn) {
  const auto& ov = ctx_.cfg().overload;
  if (!ctx_.measured_pass || !ov.hedging_enabled()) return;
  if (conn->hedges_used >= static_cast<std::uint32_t>(ov.max_hedges)) return;
  const auto att = conn->attempt;
  const auto id = conn->id;
  ctx_.sched->after(
      seconds_to_simtime(ov.hedge_delay_seconds), [this, conn, att, id]() {
        // Still the same request (persistent connections reuse the struct)
        // and still the same live attempt (not completed, failed, retried
        // or waiting out a backoff)?
        if (conn->id != id) return;
        if (attempt_stale(conn, att)) return;
        if (!ctx_.overload->try_spend_retry_token()) {
          ctx_.note_decision(obs::DecisionKind::kBudgetDeny,
                             obs::DecisionCause::kBudgetDeniedHedge, conn->id,
                             conn->entry_node, -1, conn->attempt);
          return;
        }
        // Hedge: abandon the straggling attempt (its queued events go
        // stale via the attempt counter) and re-dispatch. The engine's
        // one-live-attempt invariant makes this
        // backup-request-with-cancellation rather than true tied requests:
        // the straggler is cancelled the moment the backup launches.
        ++conn->hedges_used;
        ctx_.service->release_service_count(conn);
        ++conn->attempt;
        ctx_.note_decision(obs::DecisionKind::kHedge, obs::DecisionCause::kHedgeFired,
                           conn->id, conn->entry_node, -1, conn->attempt,
                           static_cast<std::int64_t>(conn->hedges_used));
        ctx_.observers->on_hedge(ctx_.now());
        ctx_.dispatcher->start_attempt(conn);
        arm_hedge(conn);
      });
}

}  // namespace l2s::core::engine
