#include "l2sim/core/engine/metrics_collector.hpp"

#include <algorithm>
#include <cmath>

#include "l2sim/cache/cache_stats.hpp"
#include "l2sim/common/error.hpp"
#include "l2sim/core/engine/admission.hpp"

namespace l2s::core::engine {

void MetricsCollector::begin_measurement(SimTime measure_start) {
  availability_.begin(measure_start,
                      seconds_to_simtime(ctx_.cfg().goodput_interval_seconds),
                      ctx_.cfg().nodes);
  if (!ctx_.cfg().timeline_csv_path.empty()) {
    timeline_ = std::make_unique<std::ofstream>(ctx_.cfg().timeline_csv_path);
    if (!*timeline_)
      throw_error("cannot open timeline CSV: " + ctx_.cfg().timeline_csv_path);
    *timeline_ << "time_s";
    for (int n = 0; n < ctx_.cfg().nodes; ++n) *timeline_ << ",node" << n;
    *timeline_ << '\n';
  }
}

void MetricsCollector::start_sampling() {
  if (ctx_.cfg().load_sample_interval > 0 && ctx_.cfg().nodes > 1)
    ctx_.sched->after(ctx_.cfg().load_sample_interval, [this]() { sample_loads(); });
}

void MetricsCollector::sample_loads() {
  // The sampler rides along with the run and stops once the work drains
  // (a perpetual self-rescheduling event would keep the scheduler alive).
  if (ctx_.admission->drained()) return;
  double sum = 0.0;
  double sq = 0.0;
  double max = 0.0;
  for (const auto& n : *ctx_.nodes) {
    const auto load = static_cast<double>(n->open_connections());
    sum += load;
    sq += load * load;
    max = std::max(max, load);
  }
  const auto count = static_cast<double>(ctx_.nodes->size());
  const double mean = sum / count;
  if (mean > 0.0) {
    const double variance = std::max(0.0, sq / count - mean * mean);
    load_cov_.add(std::sqrt(variance) / mean);
    load_max_mean_.add(max / mean);
  }
  if (timeline_ && timeline_->is_open()) {
    *timeline_ << simtime_to_seconds(ctx_.now());
    for (const auto& n : *ctx_.nodes) *timeline_ << ',' << n->open_connections();
    *timeline_ << '\n';
  }
  // Let passive observers (the telemetry probe) piggyback on this tick.
  ctx_.observers->on_load_sample(ctx_.now());
  ctx_.sched->after(ctx_.cfg().load_sample_interval, [this]() { sample_loads(); });
}

void MetricsCollector::on_request_completed(const cluster::Connection& conn, SimTime now) {
  ++completed_;
  if (conn.retries_used > 0) ++completed_after_retry_;
  availability_.record_completion(now);
  // Client-perceived latency spans every attempt, from the first arrival.
  const double response_ms = simtime_to_seconds(now - conn.first_arrival) * 1e3;
  response_times_.add(response_ms);
  response_hist_.add(response_ms);
  stage_entry_.add(simtime_ms(conn.t_decided - conn.arrival));
  stage_forward_.add(simtime_ms(conn.t_service - conn.t_decided));
  stage_disk_.add(simtime_ms(conn.t_disk_done - conn.t_service));
  stage_reply_.add(simtime_ms(now - conn.t_disk_done));
}

void MetricsCollector::on_connection_closed(const cluster::Connection& /*conn*/) {
  ++connections_;
}

void MetricsCollector::on_request_failed(const cluster::Connection* /*conn*/,
                                         FailureKind kind, SimTime now) {
  ++failed_;
  switch (kind) {
    case FailureKind::kDeadline: ++failed_deadline_; break;
    case FailureKind::kRetriesExhausted: ++failed_retries_; break;
    case FailureKind::kRejected: ++failed_rejected_; break;
    case FailureKind::kShed: ++failed_shed_; break;
  }
  availability_.record_failure(now);
}

void MetricsCollector::on_retry_scheduled(SimTime /*now*/) {
  ++retry_attempts_;
  availability_.record_retry();
}

void MetricsCollector::reset() {
  completed_ = 0;
  connections_ = 0;
  forwarded_ = 0;
  migrations_ = 0;
  remote_fetches_ = 0;
  failed_ = 0;
  failed_deadline_ = 0;
  failed_retries_ = 0;
  failed_rejected_ = 0;
  failed_shed_ = 0;
  completed_after_retry_ = 0;
  retry_attempts_ = 0;
  hedge_attempts_ = 0;
  brownout_transitions_ = 0;
  brownout_level_ = 0;
  response_times_.reset();
  response_hist_ = stats::LogHistogram(0.01, 1.3, 64);
  stage_entry_.reset();
  stage_forward_.reset();
  stage_disk_.reset();
  stage_reply_.reset();
  load_cov_.reset();
  load_max_mean_.reset();
}

SimResult MetricsCollector::collect(SimTime measure_start,
                                    const fault::FailureDetector* detector) const {
  SimResult r;
  r.policy = ctx_.policy->name();
  r.trace = ctx_.trace->name();
  r.nodes = ctx_.cfg().nodes;
  r.completed = completed_;
  const SimTime elapsed = ctx_.now() - measure_start;
  r.elapsed_seconds = simtime_to_seconds(elapsed);
  r.throughput_rps =
      r.elapsed_seconds > 0.0 ? static_cast<double>(completed_) / r.elapsed_seconds : 0.0;

  cache::CacheStats cache_totals;
  double idle_sum = 0.0;
  for (const auto& n : *ctx_.nodes) {
    cache_totals.merge(n->file_cache().stats());
    const double util = n->cpu().utilization(elapsed);
    r.node_cpu_utilization.push_back(util);
    idle_sum += 1.0 - util;
  }
  r.hit_rate = cache_totals.hit_rate();
  r.miss_rate = cache_totals.miss_rate();
  r.cpu_idle_fraction = idle_sum / static_cast<double>(ctx_.cfg().nodes);

  r.forwarded = forwarded_;
  r.forwarded_fraction =
      completed_ == 0 ? 0.0
                      : static_cast<double>(forwarded_) / static_cast<double>(completed_);
  r.connections = connections_;
  r.migrations = migrations_;
  r.remote_fetches = remote_fetches_;
  r.failed = failed_;
  r.failed_deadline = failed_deadline_;
  r.failed_retries_exhausted = failed_retries_;
  r.failed_rejected = failed_rejected_;
  r.failed_shed = failed_shed_;
  r.completed_after_retry = completed_after_retry_;
  r.retry_attempts = retry_attempts_;
  r.hedge_attempts = hedge_attempts_;
  r.brownout_transitions = brownout_transitions_;
  r.brownout_final_level = brownout_level_;
  const std::uint64_t requests = completed_ + failed_;
  r.retry_amplification =
      requests > 0
          ? static_cast<double>(requests + retry_attempts_) / static_cast<double>(requests)
          : 0.0;
  r.via_dropped = ctx_.via->messages_dropped();
  r.via_duplicated = ctx_.via->messages_duplicated();
  r.via_delayed = ctx_.via->messages_delayed();
  r.heartbeats = detector ? detector->heartbeats_sent() : 0;
  if (availability_.detection_latency_ms().count() > 0)
    r.detection_latency_ms = availability_.detection_latency_ms().mean();
  if (availability_.readmission_ms().count() > 0)
    r.time_to_recover_ms = availability_.readmission_ms().mean();
  r.goodput_interval_seconds = ctx_.cfg().goodput_interval_seconds;
  r.goodput_rps = availability_.goodput_rps(ctx_.now());

  if (response_times_.count() > 0) {
    r.mean_response_ms = response_times_.mean();
    r.max_response_ms = response_times_.max();
    r.p50_response_ms = response_hist_.quantile(0.50);
    r.p95_response_ms = response_hist_.quantile(0.95);
    r.p99_response_ms = response_hist_.quantile(0.99);
    r.stage_entry_ms = stage_entry_.mean();
    r.stage_forward_ms = stage_forward_.mean();
    r.stage_disk_ms = stage_disk_.mean();
    r.stage_reply_ms = stage_reply_.mean();
  }
  if (load_cov_.count() > 0) {
    r.load_cov = load_cov_.mean();
    r.load_max_over_mean = load_max_mean_.mean();
  }
  r.via_messages = ctx_.via->messages_sent();
  r.load_broadcasts = ctx_.policy->counters().get("load_broadcasts");
  r.locality_broadcasts = ctx_.policy->counters().get("locality_broadcasts") +
                          ctx_.policy->counters().get("set_create") +
                          ctx_.policy->counters().get("set_grow") +
                          ctx_.policy->counters().get("set_shrink");
  return r;
}

}  // namespace l2s::core::engine
