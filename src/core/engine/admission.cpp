#include "l2sim/core/engine/admission.hpp"

#include "l2sim/core/engine/overload.hpp"

namespace l2s::core::engine {

void AdmissionController::open() {
  const std::uint64_t slots = ctx_.cfg().admission.buffer_slots_per_node *
                              static_cast<std::uint64_t>(ctx_.cfg().nodes);
  injector_ = std::make_unique<cluster::Injector>(*ctx_.trace, slots);
}

void AdmissionController::begin_replay(cluster::Injector::InjectFn inject) {
  injector_->start(std::move(inject));
}

bool AdmissionController::try_admit(std::uint64_t& seq, trace::Request& request) {
  return injector_->try_admit(seq, request);
}

bool AdmissionController::try_take(std::uint64_t& seq, trace::Request& request) {
  return injector_->try_take(seq, request);
}

void AdmissionController::on_complete() { injector_->on_complete(); }

void AdmissionController::release_after(SimTime hold) {
  if (hold > 0) {
    ctx_.sched->after(hold, [this]() { injector_->on_complete(); });
  } else {
    injector_->on_complete();
  }
}

void AdmissionController::reject_overflow() {
  std::uint64_t seq = 0;
  trace::Request r{};
  if (injector_->try_take(seq, r)) {
    ctx_.note_decision(obs::DecisionKind::kReject, obs::DecisionCause::kBufferOverflow,
                       seq, -1);
    ctx_.observers->on_request_failed(nullptr, FailureKind::kRejected, ctx_.now());
  }
}

void AdmissionController::shed_arrival() {
  std::uint64_t seq = 0;
  trace::Request r{};
  if (injector_->try_take(seq, r)) {
    // Attribute the shed to the defense that refused the arrival; the
    // request never materialized a connection, so `request` carries the
    // injector sequence number instead of a connection id.
    ctx_.note_decision(obs::DecisionKind::kShed, ctx_.overload->last_shed_cause(), seq,
                       -1);
    ctx_.observers->on_request_failed(nullptr, FailureKind::kShed, ctx_.now());
  }
}

}  // namespace l2s::core::engine
