#include "l2sim/core/engine/overload.hpp"

#include <algorithm>
#include <cmath>

#include "l2sim/core/engine/admission.hpp"

namespace l2s::core::engine {

void OverloadController::begin_pass() {
  tokens_ = ov().retry_budget_burst;
  window_start_ = ctx_.now();
  window_delay_sum_ = 0.0;
  window_samples_ = 0;
  latched_delay_ = 0.0;
  above_target_ = false;
  arrivals_seen_ = 0;
  aimd_cap_ = static_cast<double>(ctx_.cfg().admission.buffer_slots_per_node) *
              static_cast<double>(ctx_.cfg().nodes);
  aimd_failure_seen_ = false;
  aimd_last_decrease_ = 0;
  if (level_ != 0) {
    // Passes start healthy; reset the policy's brownout posture quietly
    // (measurement statistics are reset separately, nothing to observe).
    level_ = 0;
    ctx_.policy->on_brownout(0);
  }
}

void OverloadController::start() {
  if (!ctx_.measured_pass) return;  // warm-up runs with defenses quiet
  if (ov().shedder == ShedderKind::kAimd)
    ctx_.sched->after(seconds_to_simtime(ov().aimd_period_seconds),
                      [this]() { aimd_tick(); });
}

std::uint64_t OverloadController::window_cap() const {
  const auto floor_cap = static_cast<std::uint64_t>(aimd_cap_);
  return std::max(floor_cap, ov().aimd_min_window);
}

bool OverloadController::admit_arrival() {
  if (!ctx_.measured_pass || !ov().admission_defense()) return true;
  // Re-probe after starvation: if a whole delay window elapsed with *no*
  // samples — nothing completed and nothing failed, which with deadlines
  // armed means the system drained (typically because this shedder starved
  // it) — close the window as healthy. Without this, a 100%-shed latch
  // freezes itself on: shed everything -> no events -> no window ever
  // closes -> shed everything, forever. CoDel's drop state re-probes the
  // queue for the same reason.
  if ((ov().shedder == ShedderKind::kQueueDelay || ov().brownout) &&
      window_samples_ == 0 &&
      ctx_.now() - window_start_ >=
          seconds_to_simtime(ov().delay_window_seconds)) {
    close_window(ctx_.now());
  }
  ++arrivals_seen_;
  // Brownout level 2: shed service — every other arrival is turned away
  // regardless of what the shedder would decide (deterministic modulo
  // drop, no randomness).
  if (level_ >= 2 && (arrivals_seen_ % 2 == 0)) {
    last_shed_cause_ = obs::DecisionCause::kShedBrownout;
    return false;
  }
  switch (ov().shedder) {
    case ShedderKind::kNone:
      return true;
    case ShedderKind::kStaticCap:
      last_shed_cause_ = obs::DecisionCause::kShedStaticCap;
      return ctx_.admission->in_flight() < ov().static_cap;
    case ShedderKind::kQueueDelay:
      last_shed_cause_ = obs::DecisionCause::kShedQueueDelay;
      return !above_target_;
    case ShedderKind::kAimd:
      last_shed_cause_ = obs::DecisionCause::kShedAimd;
      return ctx_.admission->in_flight() < window_cap();
  }
  return true;
}

void OverloadController::earn_token() {
  if (!ctx_.measured_pass || !ov().budget_enabled()) return;
  tokens_ = std::min(ov().retry_budget_burst, tokens_ + ov().retry_budget_ratio);
}

bool OverloadController::try_spend_retry_token() {
  if (!ctx_.measured_pass || !ov().budget_enabled()) return true;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void OverloadController::note_completion(const cluster::Connection& conn,
                                         SimTime now) {
  if (!ctx_.measured_pass) return;
  if (ov().shedder != ShedderKind::kQueueDelay && !ov().brownout) return;
  const double sojourn =
      simtime_to_seconds(now - conn.first_arrival);
  update_delay_signal(sojourn, now);
}

void OverloadController::update_delay_signal(double sojourn_s, SimTime now) {
  window_delay_sum_ += sojourn_s;
  ++window_samples_;
  if (now - window_start_ < seconds_to_simtime(ov().delay_window_seconds)) return;
  close_window(now);
}

void OverloadController::close_window(SimTime now) {
  // Latch the *mean* sojourn across the window, failures included. CoDel
  // latches the windowed minimum, but that presumes one shared queue; a
  // cache cluster is bimodal — hits bypass the loaded disks entirely, so
  // during a miss-storm collapse every window still contains a
  // sub-millisecond hit and the min never trips. The mean sees both
  // populations, and terminal failures (deadline, retries exhausted) drag
  // it up exactly when the cluster is eating requests. An empty window (no
  // completions, no failures) latches zero: nothing was in flight long
  // enough to report, so there is no standing queue.
  latched_delay_ =
      window_samples_ == 0
          ? 0.0
          : window_delay_sum_ / static_cast<double>(window_samples_);
  window_delay_sum_ = 0.0;
  window_samples_ = 0;
  window_start_ = now;

  if (ov().shedder == ShedderKind::kQueueDelay)
    above_target_ = latched_delay_ > ov().target_delay_seconds;

  if (ov().brownout) {
    // Rise to the level whose threshold the latched delay exceeds; fall
    // only once the delay drops below half the threshold that raised the
    // level (hysteresis against flapping).
    const double l1 = ov().brownout_forward_delay_seconds;
    const double l2 = ov().brownout_service_delay_seconds;
    const int up = latched_delay_ >= l2 ? 2 : latched_delay_ >= l1 ? 1 : 0;
    const int down = latched_delay_ < 0.5 * l1   ? 0
                     : latched_delay_ < 0.5 * l2 ? 1
                                                 : 2;
    int next = level_;
    if (up > level_)
      next = up;
    else if (down < level_)
      next = down;
    if (next != level_) set_brownout_level(next, now);
  }
}

void OverloadController::set_brownout_level(int level, SimTime now) {
  ctx_.note_decision(obs::DecisionKind::kBrownout,
                     level > level_ ? obs::DecisionCause::kBrownoutRaise
                                    : obs::DecisionCause::kBrownoutEase,
                     0, -1, -1, 0, level);
  level_ = level;
  ctx_.policy->on_brownout(level);
  ctx_.observers->on_brownout(level, now);
}

void OverloadController::note_failure(const cluster::Connection* conn,
                                      FailureKind kind, SimTime now) {
  if (!ctx_.measured_pass) return;
  if (kind != FailureKind::kDeadline && kind != FailureKind::kRetriesExhausted)
    return;
  // Failed requests feed the delay window too: in a full collapse the only
  // completions are the lucky fast ones, so a completion-only estimator
  // reads "healthy" while everything else dies of old age. A request that
  // failed its deadline sat in the system at least that long — that IS the
  // standing-queue signal.
  if (conn != nullptr &&
      (ov().shedder == ShedderKind::kQueueDelay || ov().brownout)) {
    update_delay_signal(simtime_to_seconds(now - conn->first_arrival), now);
  }
  if (ov().shedder != ShedderKind::kAimd) return;
  aimd_failure_seen_ = true;
  // Multiplicative decrease at most once per period (one congestion event
  // per RTT in TCP terms), clamped at the minimum window.
  if (now - aimd_last_decrease_ <
      seconds_to_simtime(ov().aimd_period_seconds))
    return;
  aimd_last_decrease_ = now;
  aimd_cap_ = std::max(static_cast<double>(ov().aimd_min_window),
                       aimd_cap_ * ov().aimd_decrease);
}

void OverloadController::aimd_tick() {
  if (ctx_.admission->drained()) return;  // pass over: let the heap empty
  const double full =
      static_cast<double>(ctx_.cfg().admission.buffer_slots_per_node) *
      static_cast<double>(ctx_.cfg().nodes);
  if (!aimd_failure_seen_)
    aimd_cap_ = std::min(full, aimd_cap_ + ov().aimd_increase);
  aimd_failure_seen_ = false;
  ctx_.sched->after(seconds_to_simtime(ov().aimd_period_seconds),
                    [this]() { aimd_tick(); });
}

}  // namespace l2s::core::engine
