#include "l2sim/core/engine/persistent_path.hpp"

#include "l2sim/common/error.hpp"
#include "l2sim/core/engine/retry.hpp"
#include "l2sim/core/engine/service_path.hpp"

namespace l2s::core::engine {

void PersistentPath::continue_connection(const ConnPtr& conn) {
  const auto att = conn->attempt;
  ctx_.router->forward(ctx_.cfg().request_msg_bytes, [this, conn, att]() {
    if (attempt_stale(conn, att)) return;
    if (!ctx_.service->service_current(conn)) {
      ctx_.retry->abort_connection(conn, obs::DecisionCause::kServiceNodeDown);
      return;
    }
    cluster::Node& n = ctx_.node(conn->service_node);
    n.nic().rx().submit(ctx_.cfg().net.ni_request_time(), [this, conn, att]() {
      if (attempt_stale(conn, att)) return;
      if (!ctx_.service->service_current(conn)) {
        ctx_.retry->abort_connection(conn, obs::DecisionCause::kServiceNodeDown);
        return;
      }
      cluster::Node& node = ctx_.node(conn->service_node);
      conn->arrival = ctx_.now();
      conn->first_arrival = conn->arrival;
      ctx_.retry->arm_deadline(conn);
      ctx_.retry->arm_hedge(conn);
      conn->state = ConnectionState::kParsing;
      node.cpu().submit(node.parse_time(), [this, conn, att]() {
        if (attempt_stale(conn, att)) return;
        persistent_distribute(conn);
      });
    });
  });
}

void PersistentPath::persistent_distribute(const ConnPtr& conn) {
  if (conn->state == ConnectionState::kDone) return;
  if (!ctx_.service->service_current(conn)) {
    ctx_.retry->abort_connection(conn, obs::DecisionCause::kServiceNodeDown);
    return;
  }
  conn->state = ConnectionState::kDispatching;
  const int current = conn->service_node;
  const int target = ctx_.policy->select_next_in_connection(current, conn->request);
  L2S_REQUIRE(target >= 0 && target < ctx_.cfg().nodes);
  if (target == current) {
    ctx_.service->begin_service(conn, /*opening=*/false);
    return;
  }
  if (ctx_.cfg().persistence.mode == PersistentMode::kConnectionHandoff) {
    migrate_connection(conn, target);
  } else {
    remote_fetch(conn, target);
  }
}

void PersistentPath::migrate_connection(const ConnPtr& conn, int target) {
  ctx_.observers->on_migration();
  ctx_.observers->on_forward();
  conn->state = ConnectionState::kForwarding;
  const int from = conn->service_node;
  const auto att = conn->attempt;
  cluster::Node& old_node = ctx_.node(from);
  old_node.cpu().submit(ctx_.policy->forward_cpu_time(from), [this, conn, from, target, att]() {
    if (attempt_stale(conn, att)) return;
    ctx_.via->transmit(from, target, ctx_.cfg().request_msg_bytes,
                       [this, conn, from, target, att]() {
      if (attempt_stale(conn, att)) return;
      cluster::Node& new_node = ctx_.node(target);
      new_node.cpu().submit(ctx_.cfg().net.cpu_msg_time(), [this, conn, from, target, att]() {
        if (attempt_stale(conn, att)) return;
        if (!ctx_.node_alive(target)) {
          ctx_.retry->abort_connection(conn, obs::DecisionCause::kPeerNodeDown);
          return;
        }
        // `from` loses the connection (if it is still that incarnation).
        ctx_.service->release_service_count(conn);
        ctx_.node(target).connection_opened();
        conn->counted_in_service = true;
        conn->service_node = target;
        conn->service_epoch = ctx_.node(target).epoch();
        ctx_.policy->on_connection_migrated(from, target, conn->request);
        ctx_.service->begin_service(conn, /*opening=*/false);
      });
    });
  });
}

void PersistentPath::remote_fetch(const ConnPtr& conn, int owner) {
  ctx_.observers->on_remote_fetch();
  ctx_.observers->on_forward();
  // Back-end request forwarding: the connection stays put; the caching
  // node supplies the content over the cluster network and the current
  // node replies to the client. The fetched file is *not* inserted into
  // the local cache (proxy semantics).
  const int current = conn->service_node;
  const auto att = conn->attempt;
  conn->state = ConnectionState::kForwarding;
  cluster::Node& cur = ctx_.node(current);
  cur.cpu().submit(ctx_.policy->forward_cpu_time(current), [this, conn, current, owner, att]() {
    if (attempt_stale(conn, att)) return;
    ctx_.via->transmit(current, owner, ctx_.cfg().request_msg_bytes, [this, conn, current,
                                                                     owner, att]() {
      if (attempt_stale(conn, att)) return;
      cluster::Node& own = ctx_.node(owner);
      own.cpu().submit(ctx_.cfg().net.cpu_msg_time(), [this, conn, current, owner, att]() {
        if (attempt_stale(conn, att)) return;
        if (!ctx_.node_alive(owner) || !ctx_.node_alive(current)) {
          ctx_.retry->abort_connection(conn, obs::DecisionCause::kPeerNodeDown);
          return;
        }
        cluster::Node& o = ctx_.node(owner);
        const Bytes file_bytes = ctx_.trace->files().size_of(conn->request.file);
        auto send_back = [this, conn, current, owner, att]() {
          cluster::Node& src = ctx_.node(owner);
          // Memory-to-NIC copy at the owner, bulk transfer, then the
          // normal reply path at the connection's node.
          src.cpu().submit(src.reply_time(conn->request.bytes), [this, conn, current,
                                                                owner, att]() {
            if (attempt_stale(conn, att)) return;
            // bulk(): the payload-bearing leg — rides the flow-level
            // network when topology.flow_level is on (identical to
            // transmit() otherwise).
            ctx_.via->bulk(owner, current, conn->request.bytes, [this, conn, current,
                                                                 att]() {
              if (attempt_stale(conn, att)) return;
              cluster::Node& c = ctx_.node(current);
              c.cpu().submit(ctx_.cfg().net.cpu_msg_time(), [this, conn, att]() {
                if (attempt_stale(conn, att)) return;
                ctx_.service->reply_path(conn);
              });
            });
          });
        };
        if (o.file_cache().lookup(conn->request.file)) {
          send_back();
        } else {
          o.disk().read(file_bytes, [this, owner, conn, file_bytes, send_back, att]() {
            if (attempt_stale(conn, att)) return;
            ctx_.node(owner).file_cache().insert(conn->request.file, file_bytes);
            send_back();
          });
        }
      });
    });
  });
}

}  // namespace l2s::core::engine
