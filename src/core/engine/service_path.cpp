#include "l2sim/core/engine/service_path.hpp"

#include "l2sim/core/engine/admission.hpp"
#include "l2sim/core/engine/arrival.hpp"
#include "l2sim/core/engine/overload.hpp"
#include "l2sim/core/engine/persistent_path.hpp"
#include "l2sim/core/engine/retry.hpp"

namespace l2s::core::engine {

void ServicePath::begin_service(const ConnPtr& conn, bool opening) {
  if (conn->state == ConnectionState::kDone) return;
  if (!service_current(conn)) {
    ctx_.retry->abort_connection(conn, obs::DecisionCause::kServiceNodeDown);
    return;
  }
  cluster::Node& n = ctx_.node(conn->service_node);
  conn->state = ConnectionState::kServing;
  conn->t_service = ctx_.now();
  if (opening) {
    n.connection_opened();
    conn->counted_in_service = true;
    conn->service_epoch = n.epoch();
    ctx_.policy->on_service_start(conn->service_node, conn->request);
  }

  if (n.file_cache().lookup(conn->request.file)) {
    conn->cache_hit = true;
    conn->t_disk_done = ctx_.now();
    reply_path(conn);
    return;
  }
  // Miss: read the whole file from disk, make it resident, then reply.
  const auto att = conn->attempt;
  const int read_node = conn->service_node;
  const int read_epoch = n.epoch();
  const Bytes file_bytes = ctx_.trace->files().size_of(conn->request.file);
  n.disk().read(file_bytes, [this, conn, file_bytes, att, read_node,
                             read_epoch]() {
    // The read happened, so the file is resident whether or not the
    // requesting attempt is still around — the page cache outlives a
    // hung-up client. Skipping this insert for abandoned attempts makes
    // retry storms self-sustaining: timed-out reads never warm the cache,
    // so every retry misses again, forever. Only a crash/restart in
    // between voids the fill (that memory is gone).
    cluster::Node& node = ctx_.node(read_node);
    if (node.alive() && node.epoch() == read_epoch)
      node.file_cache().insert(conn->request.file, file_bytes);
    if (attempt_stale(conn, att)) return;
    if (!service_current(conn)) {
      ctx_.retry->abort_connection(conn, obs::DecisionCause::kServiceNodeDown);
      return;
    }
    conn->t_disk_done = ctx_.now();
    reply_path(conn);
  });
}

void ServicePath::reply_path(const ConnPtr& conn) {
  if (conn->state == ConnectionState::kDone) return;
  if (!service_current(conn)) {
    ctx_.retry->abort_connection(conn, obs::DecisionCause::kServiceNodeDown);
    return;
  }
  const auto att = conn->attempt;
  cluster::Node& n = ctx_.node(conn->service_node);
  const Bytes bytes = conn->request.bytes;
  conn->state = ConnectionState::kReplying;
  n.cpu().submit(n.reply_time(bytes), [this, conn, bytes, att]() {
    if (attempt_stale(conn, att)) return;
    cluster::Node& node = ctx_.node(conn->service_node);
    node.nic().tx().submit(ctx_.cfg().net.ni_reply_time(bytes), [this, conn, bytes, att]() {
      if (attempt_stale(conn, att)) return;
      ctx_.router->forward(bytes, [this, conn, att]() {
        if (attempt_stale(conn, att)) return;
        request_finished(conn);
      });
    });
  });
}

void ServicePath::request_finished(const ConnPtr& conn) {
  if (conn->state == ConnectionState::kDone) return;
  conn->completion = ctx_.now();
  ++conn->requests_served;
  ctx_.overload->note_completion(*conn, conn->completion);
  ctx_.observers->on_request_completed(*conn, conn->completion);

  if (conn->remaining_requests > 0) {
    std::uint64_t seq = 0;
    trace::Request next{};
    if (ctx_.admission->try_take(seq, next)) {
      --conn->remaining_requests;
      conn->id = seq;
      conn->request = next;
      ctx_.arrival->apply_churn(conn->request);
      ctx_.overload->earn_token();
      // A fresh request on the same connection: new attempt id (stale
      // timers from the previous request must not touch it) and a fresh
      // retry budget.
      ++conn->attempt;
      conn->retries_used = 0;
      conn->hedges_used = 0;
      ctx_.persistent->continue_connection(conn);
      return;
    }
  }
  close_connection(conn);
}

void ServicePath::close_connection(const ConnPtr& conn) {
  conn->state = ConnectionState::kDone;
  cluster::Node& n = ctx_.node(conn->service_node);
  // A completion that limps in across its node's crash+restart must not
  // touch the fresh incarnation's count (or feed the policy a stale event).
  const bool same_epoch = n.epoch() == conn->service_epoch;
  if (same_epoch) n.connection_closed();
  conn->counted_in_service = false;
  ctx_.observers->on_connection_closed(*conn);
  if (same_epoch) ctx_.policy->on_complete(conn->service_node, conn->request);
  ctx_.admission->on_complete();
}

void ServicePath::release_service_count(const ConnPtr& conn) {
  if (!conn->counted_in_service) return;
  conn->counted_in_service = false;
  cluster::Node& n = ctx_.node(conn->service_node);
  // A dead node's bookkeeping died with it; a recovered node restarted
  // with a zeroed count, so a pre-crash epoch must not decrement it.
  if (n.alive() && n.epoch() == conn->service_epoch) n.connection_closed();
}

bool ServicePath::service_current(const ConnPtr& conn) const {
  const cluster::Node& n = ctx_.node(conn->service_node);
  if (!n.alive()) return false;
  return !conn->counted_in_service || n.epoch() == conn->service_epoch;
}

}  // namespace l2s::core::engine
