#include "l2sim/core/engine/arrival.hpp"

#include <algorithm>
#include <cmath>

#include "l2sim/core/engine/admission.hpp"
#include "l2sim/core/engine/dispatch.hpp"
#include "l2sim/core/engine/retry.hpp"

namespace l2s::core::engine {

void ArrivalSource::start() {
  if (ctx_.cfg().arrival.open_loop_rate > 0.0) {
    // Open loop: a Poisson pump admits requests at the configured rate;
    // the injector tracks the trace cursor and in-flight slots only.
    ctx_.sched->after(0, [this]() { open_loop_arrival(); });
  } else {
    ctx_.admission->begin_replay(
        [this](std::uint64_t seq, const trace::Request& r) { inject(seq, r); });
  }
}

void ArrivalSource::open_loop_arrival() {
  std::uint64_t seq = 0;
  trace::Request r{};
  if (ctx_.admission->try_admit(seq, r)) {
    inject(seq, r);
  } else if (!ctx_.admission->exhausted()) {
    // The admission buffers are full: the arrival is refused and the
    // request it would have carried is counted as failed (finite-buffer
    // semantics above saturation).
    ctx_.admission->reject_overflow();
  }
  if (!ctx_.admission->exhausted()) {
    const SimTime gap = seconds_to_simtime(
        ctx_.rng->next_exponential(ctx_.cfg().arrival.open_loop_rate));
    ctx_.sched->after(gap, [this]() { open_loop_arrival(); });
  }
}

std::uint32_t ArrivalSource::sample_connection_length() {
  const double mean = ctx_.cfg().persistence.mean_requests_per_connection;
  if (mean <= 1.0) return 1;
  // Geometric on {1, 2, ...} with the requested mean.
  const double p = 1.0 / mean;
  double u = ctx_.rng->next_double();
  while (u <= 0.0) u = ctx_.rng->next_double();
  const double k = std::floor(std::log(u) / std::log(1.0 - p));
  return 1 + static_cast<std::uint32_t>(std::min(k, 1e6));
}

void ArrivalSource::inject(std::uint64_t seq, const trace::Request& r) {
  auto conn = std::make_shared<cluster::Connection>();
  conn->id = seq;
  conn->request = r;
  conn->first_arrival = ctx_.now();
  ctx_.dispatcher->start_attempt(conn);
  conn->remaining_requests = sample_connection_length() - 1;
  ctx_.retry->arm_deadline(conn);
}

}  // namespace l2s::core::engine
