#include "l2sim/core/engine/arrival.hpp"

#include <algorithm>
#include <cmath>

#include "l2sim/core/engine/admission.hpp"
#include "l2sim/core/engine/dispatch.hpp"
#include "l2sim/core/engine/overload.hpp"
#include "l2sim/core/engine/retry.hpp"

namespace l2s::core::engine {

void ArrivalSource::start() {
  pass_start_ = ctx_.now();
  if (ctx_.cfg().arrival.open_loop_rate > 0.0) {
    // Open loop: a Poisson pump admits requests at the configured rate;
    // the injector tracks the trace cursor and in-flight slots only.
    ctx_.sched->after(0, [this]() { open_loop_arrival(); });
  } else {
    ctx_.admission->begin_replay(
        [this](std::uint64_t seq, const trace::Request& r) { inject(seq, r); });
  }
}

double ArrivalSource::pass_seconds() const {
  return simtime_to_seconds(ctx_.now() - pass_start_);
}

void ArrivalSource::apply_churn(trace::Request& r) const {
  const auto& a = ctx_.cfg().arrival;
  if (!a.churn_enabled() || !ctx_.measured_pass) return;
  // The popularity ranking rotates by churn_stride ids per period: the file
  // that was rank k is now rank (k + shift) mod count, so the hot head of
  // the Zipf ranking moves through the catalogue and warmed caches go
  // stale — the non-stationary miss transient the Olmos model predicts.
  const std::uint64_t count = ctx_.trace->files().count();
  if (count == 0) return;
  const auto periods = static_cast<std::uint64_t>(
      pass_seconds() / a.churn_period_seconds);
  const std::uint64_t shift = (periods * a.churn_stride) % count;
  if (shift == 0) return;
  r.file = static_cast<trace::FileId>((r.file + shift) % count);
  // Requests may be partial GETs; keep the transferred bytes but never
  // exceed the remapped file's size.
  r.bytes = std::min(r.bytes, ctx_.trace->files().size_of(r.file));
}

void ArrivalSource::open_loop_arrival() {
  const auto& a = ctx_.cfg().arrival;
  const bool shaped =
      a.shape != ArrivalShape::kStationary && ctx_.measured_pass;
  // Lewis-Shedler thinning: candidates arrive at the peak rate and are
  // accepted with probability rate(t)/peak, yielding an inhomogeneous
  // Poisson process from a single deterministic stream. The stationary
  // path skips the acceptance draw entirely, preserving the exact draw
  // sequence the golden digests pin.
  const bool candidate_accepted =
      !shaped ||
      ctx_.rng->next_double() <
          a.shape_multiplier(pass_seconds()) / a.peak_multiplier();
  if (candidate_accepted) {
    if (!ctx_.overload->admit_arrival()) {
      // The shedder turned the arrival away before the admission window:
      // deliberate load drop, counted separately from buffer overflow.
      if (!ctx_.admission->exhausted()) ctx_.admission->shed_arrival();
    } else {
      std::uint64_t seq = 0;
      trace::Request r{};
      if (ctx_.admission->try_admit(seq, r)) {
        inject(seq, r);
      } else if (!ctx_.admission->exhausted()) {
        // The admission buffers are full: the arrival is refused and the
        // request it would have carried is counted as failed
        // (finite-buffer semantics above saturation).
        ctx_.admission->reject_overflow();
      }
    }
  }
  if (!ctx_.admission->exhausted()) {
    const double pump_rate =
        a.open_loop_rate * (shaped ? a.peak_multiplier() : 1.0);
    const SimTime gap = seconds_to_simtime(ctx_.rng->next_exponential(pump_rate));
    ctx_.sched->after(gap, [this]() { open_loop_arrival(); });
  }
}

std::uint32_t ArrivalSource::sample_connection_length() {
  const double mean = ctx_.cfg().persistence.mean_requests_per_connection;
  if (mean <= 1.0) return 1;
  // Geometric on {1, 2, ...} with the requested mean.
  const double p = 1.0 / mean;
  double u = ctx_.rng->next_double();
  while (u <= 0.0) u = ctx_.rng->next_double();
  const double k = std::floor(std::log(u) / std::log(1.0 - p));
  return 1 + static_cast<std::uint32_t>(std::min(k, 1e6));
}

void ArrivalSource::inject(std::uint64_t seq, const trace::Request& r) {
  auto conn = std::make_shared<cluster::Connection>();
  conn->id = seq;
  conn->request = r;
  apply_churn(conn->request);
  conn->first_arrival = ctx_.now();
  ctx_.overload->earn_token();
  ctx_.dispatcher->start_attempt(conn);
  conn->remaining_requests = sample_connection_length() - 1;
  ctx_.retry->arm_deadline(conn);
  ctx_.retry->arm_hedge(conn);
}

}  // namespace l2s::core::engine
