#include "l2sim/core/engine/dispatch.hpp"

#include <algorithm>
#include <cmath>

#include "l2sim/common/error.hpp"
#include "l2sim/core/engine/retry.hpp"
#include "l2sim/core/engine/service_path.hpp"

namespace l2s::core::engine {

void Dispatcher::start_attempt(const ConnPtr& conn) {
  conn->arrival = ctx_.now();
  conn->state = ConnectionState::kArriving;
  conn->service_node = -1;
  conn->cache_hit = false;
  if (conn->attempt == 0) {
    conn->entry_node = ctx_.policy->entry_node(conn->id, conn->request);
    if (ctx_.cfg().arrival.dns_entry_skew > 0.0 && ctx_.policy->entry_is_dns() &&
        ctx_.rng->next_double() < ctx_.cfg().arrival.dns_entry_skew) {
      // A cached DNS translation: the client population behind some name
      // server reuses an old answer. Popular resolvers concentrate on a few
      // nodes (Zipf over node ids).
      const auto n = static_cast<double>(ctx_.cfg().nodes);
      const double u = ctx_.rng->next_double();
      const double h = std::exp(u * std::log(n + 1.0));  // Zipf(1)-ish via inverse
      conn->entry_node = std::min(ctx_.cfg().nodes - 1, static_cast<int>(h) - 1);
    }
  } else {
    // A retrying client re-resolves: perturbing the sequence steers DNS
    // rotation or switch selection toward a different node, and the
    // cached-translation skew does not reapply (that answer just failed).
    const std::uint64_t sel = conn->id ^ (0x9E3779B97F4A7C15ULL * conn->attempt);
    conn->entry_node = ctx_.policy->entry_node(sel, conn->request);
  }

  ctx_.retry->arm_attempt_timeout(conn);

  // Client request: router, then the entry node's NI-in, then parse.
  const auto att = conn->attempt;
  ctx_.router->forward(ctx_.cfg().request_msg_bytes, [this, conn, att]() {
    if (attempt_stale(conn, att)) return;
    if (!ctx_.node_alive(conn->entry_node)) {
      // Connection refused: the entry node is down.
      ctx_.retry->abort_connection(conn, obs::DecisionCause::kEntryNodeDown);
      return;
    }
    cluster::Node& entry = ctx_.node(conn->entry_node);
    entry.nic().rx().submit(ctx_.cfg().net.ni_request_time(), [this, conn, att]() {
      if (attempt_stale(conn, att)) return;
      if (!ctx_.node_alive(conn->entry_node)) {
        ctx_.retry->abort_connection(conn, obs::DecisionCause::kEntryNodeDown);
        return;
      }
      cluster::Node& n = ctx_.node(conn->entry_node);
      conn->state = ConnectionState::kParsing;
      n.cpu().submit(n.parse_time(), [this, conn, att]() {
        if (attempt_stale(conn, att)) return;
        distribute(conn);
      });
    });
  });
}

void Dispatcher::distribute(const ConnPtr& conn) {
  if (conn->state == ConnectionState::kDone) return;
  if (!ctx_.node_alive(conn->entry_node)) {
    ctx_.retry->abort_connection(conn, obs::DecisionCause::kEntryNodeDown);
    return;
  }
  conn->state = ConnectionState::kDispatching;
  if (ctx_.policy->decides_asynchronously()) {
    const auto att = conn->attempt;
    ctx_.policy->select_service_node_async(conn->entry_node, conn->request,
                                           [this, conn, att](int target) {
                                             if (attempt_stale(conn, att)) return;
                                             dispatch_to(conn, target);
                                           });
    return;
  }
  dispatch_to(conn, ctx_.policy->select_service_node(conn->entry_node, conn->request));
}

void Dispatcher::dispatch_to(const ConnPtr& conn, int target) {
  if (conn->state == ConnectionState::kDone) return;
  conn->t_decided = ctx_.now();
  if (target < 0) {
    // The policy could not produce a decision (e.g. its dispatcher died):
    // the client's request fails.
    ctx_.note_decision(obs::DecisionKind::kDispatch, obs::DecisionCause::kNoPolicyTarget,
                       conn->id, conn->entry_node, -1, conn->attempt);
    ctx_.retry->abort_connection(conn, obs::DecisionCause::kNoPolicyTarget);
    return;
  }
  L2S_REQUIRE(target < ctx_.cfg().nodes);
  conn->service_node = target;
  ctx_.note_decision(obs::DecisionKind::kDispatch,
                     target == conn->entry_node ? obs::DecisionCause::kLocalService
                                                : obs::DecisionCause::kForwardService,
                     conn->id, conn->entry_node, target, conn->attempt);

  if (target == conn->entry_node) {
    ctx_.service->begin_service(conn, /*opening=*/true);
    return;
  }

  ctx_.observers->on_forward();
  conn->state = ConnectionState::kForwarding;
  const auto att = conn->attempt;
  cluster::Node& entry = ctx_.node(conn->entry_node);
  // Hand-off: policy-specific CPU cost at the entry node, the wire
  // transfer, and the VIA receive overhead at the target. A dropped
  // hand-off message leaves the attempt hanging until its timeout.
  entry.cpu().submit(ctx_.policy->forward_cpu_time(conn->entry_node), [this, conn, att]() {
    if (attempt_stale(conn, att)) return;
    ctx_.via->transmit(conn->entry_node, conn->service_node, ctx_.cfg().request_msg_bytes,
                       [this, conn, att]() {
                         if (attempt_stale(conn, att)) return;
                         cluster::Node& target_node = ctx_.node(conn->service_node);
                         target_node.cpu().submit(ctx_.cfg().net.cpu_msg_time(),
                                                  [this, conn, att]() {
                                                    if (attempt_stale(conn, att)) return;
                                                    ctx_.service->begin_service(
                                                        conn, /*opening=*/true);
                                                  });
                       });
  });
}

}  // namespace l2s::core::engine
