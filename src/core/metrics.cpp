#include "l2sim/core/metrics.hpp"

#include <bit>
#include <cstdio>
#include <sstream>

#include "l2sim/common/table.hpp"

namespace l2s::core {

namespace {

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h * 0x100000001B3ULL;
}

std::uint64_t fold(std::uint64_t h, double v) {
  return fold(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

// The fold sequence is pinned by the recorded golden digests
// (tests/test_golden_results.cpp): extending SimResult means appending new
// fields HERE AT THE END only after deliberately regenerating the goldens.
std::uint64_t result_digest(const SimResult& r) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = fold(h, r.completed);
  h = fold(h, r.connections);
  h = fold(h, r.forwarded);
  h = fold(h, r.migrations);
  h = fold(h, r.remote_fetches);
  h = fold(h, r.failed);
  h = fold(h, r.failed_deadline);
  h = fold(h, r.failed_retries_exhausted);
  h = fold(h, r.failed_rejected);
  h = fold(h, r.completed_after_retry);
  h = fold(h, r.retry_attempts);
  h = fold(h, r.via_messages);
  h = fold(h, r.via_dropped);
  h = fold(h, r.via_duplicated);
  h = fold(h, r.via_delayed);
  h = fold(h, r.heartbeats);
  h = fold(h, r.load_broadcasts);
  h = fold(h, r.locality_broadcasts);
  h = fold(h, r.elapsed_seconds);
  h = fold(h, r.throughput_rps);
  h = fold(h, r.hit_rate);
  h = fold(h, r.miss_rate);
  h = fold(h, r.forwarded_fraction);
  h = fold(h, r.cpu_idle_fraction);
  h = fold(h, r.retry_amplification);
  h = fold(h, r.mean_response_ms);
  h = fold(h, r.max_response_ms);
  h = fold(h, r.p50_response_ms);
  h = fold(h, r.p95_response_ms);
  h = fold(h, r.p99_response_ms);
  h = fold(h, r.stage_entry_ms);
  h = fold(h, r.stage_forward_ms);
  h = fold(h, r.stage_disk_ms);
  h = fold(h, r.stage_reply_ms);
  h = fold(h, r.load_cov);
  h = fold(h, r.load_max_over_mean);
  for (const double u : r.node_cpu_utilization) h = fold(h, u);
  // Overload-defense extension block: folded ONLY when an overload defense
  // actually fired, so every pre-overload digest (defenses off — all three
  // counters structurally zero) is preserved bit-for-bit. With a defense
  // on, the counters join the digest and chaos replays pin them too.
  if (r.failed_shed != 0 || r.hedge_attempts != 0 || r.brownout_transitions != 0) {
    h = fold(h, r.failed_shed);
    h = fold(h, r.hedge_attempts);
    h = fold(h, r.brownout_transitions);
  }
  return h;
}

std::string result_digest_hex(const SimResult& r) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(result_digest(r)));
  return buf;
}

std::string SimResult::describe() const {
  std::ostringstream os;
  os << policy << " on " << trace << " with " << nodes << " node(s): "
     << format_double(throughput_rps, 1) << " req/s (" << completed << " requests in "
     << format_double(elapsed_seconds, 2) << " s), hit rate "
     << format_double(hit_rate * 100.0, 1) << "%, forwarded "
     << format_double(forwarded_fraction * 100.0, 1) << "%, CPU idle "
     << format_double(cpu_idle_fraction * 100.0, 1) << "%, mean response "
     << format_double(mean_response_ms, 2) << " ms";
  if (failed > 0) {
    os << ", FAILED " << failed << " requests (" << failed_deadline << " deadline, "
       << failed_retries_exhausted << " retries exhausted, " << failed_rejected
       << " rejected, " << failed_shed << " shed)";
  }
  if (retry_attempts > 0)
    os << ", " << retry_attempts << " retries (" << completed_after_retry
       << " requests completed after retry)";
  if (hedge_attempts > 0) os << ", " << hedge_attempts << " hedges";
  if (brownout_transitions > 0)
    os << ", " << brownout_transitions << " brownout transition(s), final level "
       << brownout_final_level;
  if (detection_latency_ms > 0.0)
    os << ", detection latency " << format_double(detection_latency_ms, 1) << " ms";
  if (time_to_recover_ms > 0.0)
    os << ", time to readmission " << format_double(time_to_recover_ms, 1) << " ms";
  return os.str();
}

}  // namespace l2s::core
