#include "l2sim/core/metrics.hpp"

#include <sstream>

#include "l2sim/common/table.hpp"

namespace l2s::core {

std::string SimResult::describe() const {
  std::ostringstream os;
  os << policy << " on " << trace << " with " << nodes << " node(s): "
     << format_double(throughput_rps, 1) << " req/s (" << completed << " requests in "
     << format_double(elapsed_seconds, 2) << " s), hit rate "
     << format_double(hit_rate * 100.0, 1) << "%, forwarded "
     << format_double(forwarded_fraction * 100.0, 1) << "%, CPU idle "
     << format_double(cpu_idle_fraction * 100.0, 1) << "%, mean response "
     << format_double(mean_response_ms, 2) << " ms";
  if (failed > 0) {
    os << ", FAILED " << failed << " requests (" << failed_deadline << " deadline, "
       << failed_retries_exhausted << " retries exhausted, " << failed_rejected
       << " rejected)";
  }
  if (retry_attempts > 0)
    os << ", " << retry_attempts << " retries (" << completed_after_retry
       << " requests completed after retry)";
  if (detection_latency_ms > 0.0)
    os << ", detection latency " << format_double(detection_latency_ms, 1) << " ms";
  if (time_to_recover_ms > 0.0)
    os << ", time to readmission " << format_double(time_to_recover_ms, 1) << " ms";
  return os.str();
}

}  // namespace l2s::core
