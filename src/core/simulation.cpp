#include "l2sim/core/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "l2sim/common/error.hpp"

namespace l2s::core {

void SimConfig::validate() const {
  if (nodes < 1) throw_error("SimConfig: nodes must be >= 1");
  if (buffer_slots_per_node < 1) throw_error("SimConfig: buffer_slots_per_node must be >= 1");
  if (request_msg_bytes == 0) throw_error("SimConfig: request_msg_bytes must be positive");
  if (mean_requests_per_connection < 1.0)
    throw_error("SimConfig: mean_requests_per_connection must be >= 1");
  for (const auto& f : failures) {
    if (f.node < 0 || f.node >= nodes) throw_error("SimConfig: failure node out of range");
    if (f.at_seconds < 0.0) throw_error("SimConfig: failure time must be nonnegative");
  }
  if (failure_detection_seconds < 0.0)
    throw_error("SimConfig: failure_detection_seconds must be nonnegative");
  if (failure_client_timeout_seconds < 0.0)
    throw_error("SimConfig: failure_client_timeout_seconds must be nonnegative");
  if (open_loop_arrival_rate < 0.0)
    throw_error("SimConfig: open_loop_arrival_rate must be nonnegative");
  if (!node_speed_factors.empty()) {
    if (node_speed_factors.size() != static_cast<std::size_t>(nodes))
      throw_error("SimConfig: node_speed_factors must have one entry per node");
    for (const double f : node_speed_factors)
      if (f <= 0.0) throw_error("SimConfig: node speed factors must be positive");
  }
}

ClusterSimulation::ClusterSimulation(SimConfig config, const trace::Trace& trace,
                                     std::unique_ptr<policy::Policy> policy)
    : config_(config),
      trace_(trace),
      fabric_(sched_, config.net.switch_latency()),
      router_(sched_, config_.net),
      via_(sched_, fabric_, config_.net),
      policy_(std::move(policy)),
      rng_(config.seed) {
  config_.validate();
  L2S_REQUIRE(policy_ != nullptr);
  if (trace_.request_count() == 0) throw_error("ClusterSimulation: empty trace");

  policy::ClusterContext ctx;
  ctx.sched = &sched_;
  ctx.via = &via_;
  ctx.control_msg_bytes = config_.control_msg_bytes;
  for (int i = 0; i < config_.nodes; ++i) {
    const double speed = config_.node_speed_factors.empty()
                             ? 1.0
                             : config_.node_speed_factors[static_cast<std::size_t>(i)];
    nodes_.push_back(std::make_unique<cluster::Node>(sched_, i, config_.node, speed));
    via_.add_endpoint({&nodes_.back()->cpu(), &nodes_.back()->nic()});
    ctx.nodes.push_back(nodes_.back().get());
  }
  policy_->attach(ctx);
}

ClusterSimulation::~ClusterSimulation() = default;

SimResult ClusterSimulation::run() {
  L2S_REQUIRE(!ran_);
  ran_ = true;

  int pass = 0;
  if (config_.warmup) {
    policy_->on_pass_start(pass++);
    replay_trace();
    reset_statistics();
  }
  const SimTime measure_start = sched_.now();
  policy_->on_pass_start(pass);
  schedule_failures(measure_start);
  if (!config_.timeline_csv_path.empty()) {
    timeline_ = std::make_unique<std::ofstream>(config_.timeline_csv_path);
    if (!*timeline_) throw_error("cannot open timeline CSV: " + config_.timeline_csv_path);
    *timeline_ << "time_s";
    for (int n = 0; n < config_.nodes; ++n) *timeline_ << ",node" << n;
    *timeline_ << '\n';
  }
  replay_trace();
  return collect(measure_start);
}

bool ClusterSimulation::node_alive(int id) const {
  return nodes_[static_cast<std::size_t>(id)]->alive();
}

void ClusterSimulation::schedule_failures(SimTime measure_start) {
  for (const auto& f : config_.failures) {
    const SimTime when = measure_start + seconds_to_simtime(f.at_seconds);
    sched_.at(when, [this, f]() {
      nodes_[static_cast<std::size_t>(f.node)]->fail();
    });
    sched_.at(when + seconds_to_simtime(config_.failure_detection_seconds),
              [this, f]() { policy_->on_node_failed(f.node); });
  }
}

void ClusterSimulation::abort_connection(const ConnPtr& conn) {
  if (conn->stage == cluster::ConnectionStage::kDone) return;
  conn->stage = cluster::ConnectionStage::kDone;
  ++failed_;
  if (conn->counted_in_service) {
    conn->counted_in_service = false;
    cluster::Node& n = *nodes_[static_cast<std::size_t>(conn->service_node)];
    // A dead node's bookkeeping died with it.
    if (n.alive()) n.connection_closed();
  }
  // The client holds the connection until its timeout expires; only then
  // does the admission slot free up for the next request.
  const SimTime timeout = seconds_to_simtime(config_.failure_client_timeout_seconds);
  if (timeout > 0) {
    sched_.after(timeout, [this]() { injector_->on_complete(); });
  } else {
    injector_->on_complete();
  }
}

void ClusterSimulation::replay_trace() {
  const std::uint64_t slots =
      config_.buffer_slots_per_node * static_cast<std::uint64_t>(config_.nodes);
  injector_ = std::make_unique<cluster::Injector>(trace_, slots);
  if (config_.open_loop_arrival_rate > 0.0) {
    // Open loop: a Poisson pump admits requests at the configured rate;
    // the injector tracks the trace cursor and in-flight slots only.
    sched_.after(0, [this]() { open_loop_arrival(); });
  } else {
    injector_->start(
        [this](std::uint64_t seq, const trace::Request& r) { inject(seq, r); });
  }
  if (config_.load_sample_interval > 0 && config_.nodes > 1)
    sched_.after(config_.load_sample_interval, [this]() { sample_loads(); });
  sched_.run();
  L2S_REQUIRE(injector_->exhausted() && injector_->in_flight() == 0);
}

void ClusterSimulation::open_loop_arrival() {
  std::uint64_t seq = 0;
  trace::Request r{};
  if (injector_->try_admit(seq, r)) {
    inject(seq, r);
  } else if (!injector_->exhausted()) {
    // The admission buffers are full: the arrival is refused and the
    // request it would have carried is counted as failed (finite-buffer
    // semantics above saturation).
    if (injector_->try_take(seq, r)) ++failed_;
  }
  if (!injector_->exhausted()) {
    const SimTime gap =
        seconds_to_simtime(rng_.next_exponential(config_.open_loop_arrival_rate));
    sched_.after(gap, [this]() { open_loop_arrival(); });
  }
}

void ClusterSimulation::sample_loads() {
  // The sampler rides along with the run and stops once the work drains
  // (a perpetual self-rescheduling event would keep the scheduler alive).
  if (injector_->exhausted() && injector_->in_flight() == 0) return;
  double sum = 0.0;
  double sq = 0.0;
  double max = 0.0;
  for (const auto& n : nodes_) {
    const auto load = static_cast<double>(n->open_connections());
    sum += load;
    sq += load * load;
    max = std::max(max, load);
  }
  const auto count = static_cast<double>(nodes_.size());
  const double mean = sum / count;
  if (mean > 0.0) {
    const double variance = std::max(0.0, sq / count - mean * mean);
    load_cov_.add(std::sqrt(variance) / mean);
    load_max_mean_.add(max / mean);
  }
  if (timeline_ && timeline_->is_open()) {
    *timeline_ << simtime_to_seconds(sched_.now());
    for (const auto& n : nodes_) *timeline_ << ',' << n->open_connections();
    *timeline_ << '\n';
  }
  sched_.after(config_.load_sample_interval, [this]() { sample_loads(); });
}

std::uint32_t ClusterSimulation::sample_connection_length() {
  const double mean = config_.mean_requests_per_connection;
  if (mean <= 1.0) return 1;
  // Geometric on {1, 2, ...} with the requested mean.
  const double p = 1.0 / mean;
  double u = rng_.next_double();
  while (u <= 0.0) u = rng_.next_double();
  const double k = std::floor(std::log(u) / std::log(1.0 - p));
  return 1 + static_cast<std::uint32_t>(std::min(k, 1e6));
}

void ClusterSimulation::inject(std::uint64_t seq, const trace::Request& r) {
  auto conn = std::make_shared<cluster::Connection>();
  conn->id = seq;
  conn->request = r;
  conn->arrival = sched_.now();
  conn->entry_node = policy_->entry_node(seq, r);
  if (config_.dns_entry_skew > 0.0 && policy_->entry_is_dns() &&
      rng_.next_double() < config_.dns_entry_skew) {
    // A cached DNS translation: the client population behind some name
    // server reuses an old answer. Popular resolvers concentrate on a few
    // nodes (Zipf over node ids).
    const auto n = static_cast<double>(config_.nodes);
    const double u = rng_.next_double();
    const double h = std::exp(u * std::log(n + 1.0));  // Zipf(1)-ish via inverse
    conn->entry_node = std::min(config_.nodes - 1, static_cast<int>(h) - 1);
  }
  conn->stage = cluster::ConnectionStage::kArriving;
  conn->remaining_requests = sample_connection_length() - 1;

  // Client request: router, then the entry node's NI-in, then parse.
  router_.forward(config_.request_msg_bytes, [this, conn]() {
    if (!node_alive(conn->entry_node)) {
      abort_connection(conn);  // connection refused: the entry node is down
      return;
    }
    cluster::Node& entry = *nodes_[static_cast<std::size_t>(conn->entry_node)];
    entry.nic().rx().submit(config_.net.ni_request_time(), [this, conn]() {
      if (!node_alive(conn->entry_node)) {
        abort_connection(conn);
        return;
      }
      cluster::Node& n = *nodes_[static_cast<std::size_t>(conn->entry_node)];
      conn->stage = cluster::ConnectionStage::kParsing;
      n.cpu().submit(n.parse_time(), [this, conn]() { distribute(conn); });
    });
  });
}

void ClusterSimulation::distribute(const ConnPtr& conn) {
  if (conn->stage == cluster::ConnectionStage::kDone) return;
  if (!node_alive(conn->entry_node)) {
    abort_connection(conn);
    return;
  }
  if (policy_->decides_asynchronously()) {
    policy_->select_service_node_async(
        conn->entry_node, conn->request,
        [this, conn](int target) { dispatch_to(conn, target); });
    return;
  }
  dispatch_to(conn, policy_->select_service_node(conn->entry_node, conn->request));
}

void ClusterSimulation::dispatch_to(const ConnPtr& conn, int target) {
  if (conn->stage == cluster::ConnectionStage::kDone) return;
  conn->t_decided = sched_.now();
  if (target < 0) {
    // The policy could not produce a decision (e.g. its dispatcher died):
    // the client's request fails.
    abort_connection(conn);
    return;
  }
  L2S_REQUIRE(target < config_.nodes);
  conn->service_node = target;

  if (target == conn->entry_node) {
    begin_service(conn, /*opening=*/true);
    return;
  }

  ++forwarded_;
  conn->stage = cluster::ConnectionStage::kForwarding;
  cluster::Node& entry = *nodes_[static_cast<std::size_t>(conn->entry_node)];
  // Hand-off: policy-specific CPU cost at the entry node, the wire
  // transfer, and the VIA receive overhead at the target.
  entry.cpu().submit(policy_->forward_cpu_time(conn->entry_node), [this, conn]() {
    via_.transmit(conn->entry_node, conn->service_node, config_.request_msg_bytes,
                  [this, conn]() {
                    cluster::Node& target_node =
                        *nodes_[static_cast<std::size_t>(conn->service_node)];
                    target_node.cpu().submit(config_.net.cpu_msg_time(), [this, conn]() {
                      begin_service(conn, /*opening=*/true);
                    });
                  });
  });
}

void ClusterSimulation::begin_service(const ConnPtr& conn, bool opening) {
  if (conn->stage == cluster::ConnectionStage::kDone) return;
  if (!node_alive(conn->service_node)) {
    abort_connection(conn);
    return;
  }
  cluster::Node& n = *nodes_[static_cast<std::size_t>(conn->service_node)];
  conn->stage = cluster::ConnectionStage::kServing;
  conn->t_service = sched_.now();
  if (opening) {
    n.connection_opened();
    conn->counted_in_service = true;
    policy_->on_service_start(conn->service_node, conn->request);
  }

  if (n.file_cache().lookup(conn->request.file)) {
    conn->cache_hit = true;
    conn->t_disk_done = sched_.now();
    reply_path(conn);
    return;
  }
  // Miss: read the whole file from disk, make it resident, then reply.
  const Bytes file_bytes = trace_.files().size_of(conn->request.file);
  n.disk().read(file_bytes, [this, conn, file_bytes]() {
    if (conn->stage == cluster::ConnectionStage::kDone) return;
    if (!node_alive(conn->service_node)) {
      abort_connection(conn);
      return;
    }
    cluster::Node& node = *nodes_[static_cast<std::size_t>(conn->service_node)];
    node.file_cache().insert(conn->request.file, file_bytes);
    conn->t_disk_done = sched_.now();
    reply_path(conn);
  });
}

void ClusterSimulation::reply_path(const ConnPtr& conn) {
  if (conn->stage == cluster::ConnectionStage::kDone) return;
  if (!node_alive(conn->service_node)) {
    abort_connection(conn);
    return;
  }
  cluster::Node& n = *nodes_[static_cast<std::size_t>(conn->service_node)];
  const Bytes bytes = conn->request.bytes;
  n.cpu().submit(n.reply_time(bytes), [this, conn, bytes]() {
    cluster::Node& node = *nodes_[static_cast<std::size_t>(conn->service_node)];
    node.nic().tx().submit(config_.net.ni_reply_time(bytes), [this, conn, bytes]() {
      router_.forward(bytes, [this, conn]() { request_finished(conn); });
    });
  });
}

void ClusterSimulation::request_finished(const ConnPtr& conn) {
  if (conn->stage == cluster::ConnectionStage::kDone) return;
  conn->completion = sched_.now();
  ++completed_;
  ++conn->requests_served;
  const double response_ms = simtime_to_seconds(conn->response_time()) * 1e3;
  response_times_.add(response_ms);
  response_hist_.add(response_ms);
  stage_entry_.add(simtime_ms(conn->t_decided - conn->arrival));
  stage_forward_.add(simtime_ms(conn->t_service - conn->t_decided));
  stage_disk_.add(simtime_ms(conn->t_disk_done - conn->t_service));
  stage_reply_.add(simtime_ms(conn->completion - conn->t_disk_done));

  if (conn->remaining_requests > 0) {
    std::uint64_t seq = 0;
    trace::Request next{};
    if (injector_->try_take(seq, next)) {
      --conn->remaining_requests;
      conn->id = seq;
      conn->request = next;
      continue_connection(conn);
      return;
    }
  }
  close_connection(conn);
}

void ClusterSimulation::close_connection(const ConnPtr& conn) {
  conn->stage = cluster::ConnectionStage::kDone;
  cluster::Node& n = *nodes_[static_cast<std::size_t>(conn->service_node)];
  n.connection_closed();
  conn->counted_in_service = false;
  ++connections_;
  policy_->on_complete(conn->service_node, conn->request);
  injector_->on_complete();
}

void ClusterSimulation::continue_connection(const ConnPtr& conn) {
  // The client pipelines its next request over the open connection: it
  // passes the router and the current node's NI-in, is parsed, and then
  // redistributed without the connection-establishment work.
  router_.forward(config_.request_msg_bytes, [this, conn]() {
    if (conn->stage == cluster::ConnectionStage::kDone) return;
    if (!node_alive(conn->service_node)) {
      abort_connection(conn);
      return;
    }
    cluster::Node& n = *nodes_[static_cast<std::size_t>(conn->service_node)];
    n.nic().rx().submit(config_.net.ni_request_time(), [this, conn]() {
      if (conn->stage == cluster::ConnectionStage::kDone) return;
      if (!node_alive(conn->service_node)) {
        abort_connection(conn);
        return;
      }
      cluster::Node& node = *nodes_[static_cast<std::size_t>(conn->service_node)];
      conn->arrival = sched_.now();
      conn->stage = cluster::ConnectionStage::kParsing;
      node.cpu().submit(node.parse_time(), [this, conn]() { persistent_distribute(conn); });
    });
  });
}

void ClusterSimulation::persistent_distribute(const ConnPtr& conn) {
  if (conn->stage == cluster::ConnectionStage::kDone) return;
  if (!node_alive(conn->service_node)) {
    abort_connection(conn);
    return;
  }
  const int current = conn->service_node;
  const int target = policy_->select_next_in_connection(current, conn->request);
  L2S_REQUIRE(target >= 0 && target < config_.nodes);
  if (target == current) {
    begin_service(conn, /*opening=*/false);
    return;
  }
  if (config_.persistent_mode == PersistentMode::kConnectionHandoff) {
    migrate_connection(conn, target);
  } else {
    remote_fetch(conn, target);
  }
}

void ClusterSimulation::migrate_connection(const ConnPtr& conn, int target) {
  ++migrations_;
  ++forwarded_;
  conn->stage = cluster::ConnectionStage::kForwarding;
  const int from = conn->service_node;
  cluster::Node& old_node = *nodes_[static_cast<std::size_t>(from)];
  old_node.cpu().submit(policy_->forward_cpu_time(from), [this, conn, from, target]() {
    via_.transmit(from, target, config_.request_msg_bytes, [this, conn, from, target]() {
      cluster::Node& new_node = *nodes_[static_cast<std::size_t>(target)];
      new_node.cpu().submit(config_.net.cpu_msg_time(), [this, conn, from, target]() {
        if (conn->stage == cluster::ConnectionStage::kDone) return;
        if (!node_alive(target)) {
          abort_connection(conn);
          return;
        }
        if (node_alive(from)) nodes_[static_cast<std::size_t>(from)]->connection_closed();
        nodes_[static_cast<std::size_t>(target)]->connection_opened();
        conn->service_node = target;
        policy_->on_connection_migrated(from, target, conn->request);
        begin_service(conn, /*opening=*/false);
      });
    });
  });
}

void ClusterSimulation::remote_fetch(const ConnPtr& conn, int owner) {
  ++remote_fetches_;
  ++forwarded_;
  // Back-end request forwarding: the connection stays put; the caching
  // node supplies the content over the cluster network and the current
  // node replies to the client. The fetched file is *not* inserted into
  // the local cache (proxy semantics).
  const int current = conn->service_node;
  cluster::Node& cur = *nodes_[static_cast<std::size_t>(current)];
  cur.cpu().submit(policy_->forward_cpu_time(current), [this, conn, current, owner]() {
    via_.transmit(current, owner, config_.request_msg_bytes, [this, conn, current, owner]() {
      cluster::Node& own = *nodes_[static_cast<std::size_t>(owner)];
      own.cpu().submit(config_.net.cpu_msg_time(), [this, conn, current, owner]() {
        if (conn->stage == cluster::ConnectionStage::kDone) return;
        if (!node_alive(owner) || !node_alive(current)) {
          abort_connection(conn);
          return;
        }
        cluster::Node& o = *nodes_[static_cast<std::size_t>(owner)];
        const Bytes file_bytes = trace_.files().size_of(conn->request.file);
        auto send_back = [this, conn, current, owner, file_bytes]() {
          cluster::Node& src = *nodes_[static_cast<std::size_t>(owner)];
          // Memory-to-NIC copy at the owner, bulk transfer, then the
          // normal reply path at the connection's node.
          src.cpu().submit(src.reply_time(conn->request.bytes), [this, conn, current,
                                                                 owner]() {
            via_.transmit(owner, current, conn->request.bytes, [this, conn, current]() {
              cluster::Node& c = *nodes_[static_cast<std::size_t>(current)];
              c.cpu().submit(config_.net.cpu_msg_time(),
                             [this, conn]() { reply_path(conn); });
            });
          });
        };
        if (o.file_cache().lookup(conn->request.file)) {
          send_back();
        } else {
          o.disk().read(file_bytes, [this, owner, conn, file_bytes, send_back]() {
            nodes_[static_cast<std::size_t>(owner)]->file_cache().insert(conn->request.file,
                                                                         file_bytes);
            send_back();
          });
        }
      });
    });
  });
}

void ClusterSimulation::reset_statistics() {
  for (auto& n : nodes_) n->reset_stats();
  router_.resource().reset_stats();
  fabric_.reset_stats();
  via_.reset_stats();
  policy_->reset_counters();
  completed_ = 0;
  connections_ = 0;
  forwarded_ = 0;
  migrations_ = 0;
  remote_fetches_ = 0;
  failed_ = 0;
  response_times_.reset();
  response_hist_ = stats::LogHistogram(0.01, 1.3, 64);
  stage_entry_.reset();
  stage_forward_.reset();
  stage_disk_.reset();
  stage_reply_.reset();
  load_cov_.reset();
  load_max_mean_.reset();
}

SimResult ClusterSimulation::collect(SimTime measure_start) const {
  SimResult r;
  r.policy = policy_->name();
  r.trace = trace_.name();
  r.nodes = config_.nodes;
  r.completed = completed_;
  const SimTime elapsed = sched_.now() - measure_start;
  r.elapsed_seconds = simtime_to_seconds(elapsed);
  r.throughput_rps =
      r.elapsed_seconds > 0.0 ? static_cast<double>(completed_) / r.elapsed_seconds : 0.0;

  cache::CacheStats cache_totals;
  double idle_sum = 0.0;
  for (const auto& n : nodes_) {
    cache_totals.merge(n->file_cache().stats());
    const double util = n->cpu().utilization(elapsed);
    r.node_cpu_utilization.push_back(util);
    idle_sum += 1.0 - util;
  }
  r.hit_rate = cache_totals.hit_rate();
  r.miss_rate = cache_totals.miss_rate();
  r.cpu_idle_fraction = idle_sum / static_cast<double>(config_.nodes);

  r.forwarded = forwarded_;
  r.forwarded_fraction =
      completed_ == 0 ? 0.0
                      : static_cast<double>(forwarded_) / static_cast<double>(completed_);
  r.connections = connections_;
  r.migrations = migrations_;
  r.remote_fetches = remote_fetches_;
  r.failed = failed_;

  if (response_times_.count() > 0) {
    r.mean_response_ms = response_times_.mean();
    r.max_response_ms = response_times_.max();
    r.p50_response_ms = response_hist_.quantile(0.50);
    r.p95_response_ms = response_hist_.quantile(0.95);
    r.p99_response_ms = response_hist_.quantile(0.99);
    r.stage_entry_ms = stage_entry_.mean();
    r.stage_forward_ms = stage_forward_.mean();
    r.stage_disk_ms = stage_disk_.mean();
    r.stage_reply_ms = stage_reply_.mean();
  }
  if (load_cov_.count() > 0) {
    r.load_cov = load_cov_.mean();
    r.load_max_over_mean = load_max_mean_.mean();
  }
  r.via_messages = via_.messages_sent();
  r.load_broadcasts = policy_->counters().get("load_broadcasts");
  r.locality_broadcasts =
      policy_->counters().get("locality_broadcasts") + policy_->counters().get("set_create") +
      policy_->counters().get("set_grow") + policy_->counters().get("set_shrink");
  return r;
}

}  // namespace l2s::core
