#include "l2sim/core/simulation.hpp"

#include <algorithm>
#include <limits>

#include "l2sim/common/env.hpp"
#include "l2sim/common/error.hpp"
#include "l2sim/core/engine/admission.hpp"
#include "l2sim/core/engine/arrival.hpp"
#include "l2sim/core/engine/dispatch.hpp"
#include "l2sim/core/engine/metrics_collector.hpp"
#include "l2sim/core/engine/overload.hpp"
#include "l2sim/core/engine/persistent_path.hpp"
#include "l2sim/core/engine/retry.hpp"
#include "l2sim/core/engine/service_path.hpp"
#include "l2sim/obs/link_introspection.hpp"
#include "l2sim/obs/recorder.hpp"
#include "l2sim/telemetry/sim_telemetry.hpp"

namespace l2s::core {

namespace {

/// How many shards config.engine.shards resolves to: 0 keeps the serial
/// engine, kAutoShards takes the thread budget, anything else is clamped
/// to [1, nodes]. (nodes is re-validated later; the max(1, ...) keeps the
/// shard map constructible until SimConfig::validate() reports it.)
int resolved_shard_count(const SimConfig& config) {
  if (config.engine.shards == 0) return 0;
  const int nodes = std::max(1, config.nodes);
  const int requested = config.engine.shards == EngineConfig::kAutoShards
                            ? static_cast<int>(thread_budget())
                            : config.engine.shards;
  return std::clamp(requested, 1, nodes);
}

/// Build the interconnect for the run. Validates the topology geometry
/// first so a bad --racks / --fat-tree-k reports through the config error
/// path instead of tripping a constructor invariant. Takes the *member*
/// config (whose NetParams the topology keeps a reference to for its
/// lifetime), never the constructor parameter.
std::unique_ptr<net::Topology> make_topology(const SimConfig& config,
                                             des::Scheduler& sched) {
  const int nodes = std::max(1, config.nodes);
  config.topology.validate(nodes);
  return net::Topology::make(config.topology, sched, config.net, nodes);
}

}  // namespace

std::vector<SimTime> topology_lookahead_matrix(const net::Topology& topo,
                                               const des::ShardMap& map,
                                               const net::NetParams& params) {
  const int n = map.shards();
  // Host-side floor every VIA message pays before it can touch the wire
  // (the topology-independent part of min_cross_node_latency()).
  const SimTime host = params.cpu_msg_time() + params.nic_transfer_time(0);
  std::vector<SimTime> m(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    const auto [sb, se] = map.range(s);
    for (int d = 0; d < n; ++d) {
      const auto [db, de] = map.range(d);
      SimTime best = std::numeric_limits<SimTime>::max();
      for (int src = sb; src < se; ++src)
        for (int dst = db; dst < de; ++dst)
          best = std::min(best, topo.min_latency(src, dst));
      m[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
        static_cast<std::size_t>(d)] = host + best;
    }
  }
  return m;
}

ClusterSimulation::ClusterSimulation(SimConfig config, const trace::Trace& trace,
                                     std::unique_ptr<policy::Policy> policy)
    : config_(config),
      trace_(trace),
      // Rack-aligned sharding: no rack ever straddles two shards, so the
      // pairwise lookahead between distinct shards is at least the
      // cross-rack latency (single-switch rack_span == 1 keeps the old
      // plain entity partition).
      shard_map_(std::max(1, config.nodes),
                 std::max(1, resolved_shard_count(config)),
                 config.topology.rack_span(std::max(1, config.nodes))),
      sharded_(resolved_shard_count(config) > 0
                   ? std::make_unique<des::ShardedScheduler>(
                         shard_map_.shards(),
                         config.net.min_cross_node_latency(),
                         des::ShardedScheduler::Mode::kSequentialMerge)
                   : nullptr),
      sched_(sharded_ != nullptr ? sharded_->shard(0) : solo_sched_),
      topo_(make_topology(config_, sched_)),
      router_(sched_, config_.net),
      via_(sched_, *topo_, config_.net),
      policy_(std::move(policy)),
      rng_(config.seed) {
  config_.validate();
  L2S_REQUIRE(policy_ != nullptr);
  if (trace_.request_count() == 0) throw_error("ClusterSimulation: empty trace");
  if (sharded_ != nullptr && config_.engine.introspect) sharded_->enable_introspection();
  if (sharded_ != nullptr) {
    // Tighten the engine's post() bound from the global min-cross-node
    // latency to the topology's per-shard-pair floor. Merge mode executes
    // in (time, src, seq) order regardless, so this is digest-inert; it
    // is what lets a threaded engine open wider windows between shards
    // that share no rack.
    sharded_->set_pairwise_lookahead(
        topology_lookahead_matrix(*topo_, shard_map_, config_.net));
  }
  if (config_.topology.flow_level) {
    flow_ = std::make_unique<net::FlowNetwork>(sched_, *topo_, config_.net);
    via_.set_flow_network(flow_.get());
  }

  policy::ClusterContext pctx;
  pctx.sched = &sched_;
  pctx.via = &via_;
  pctx.control_msg_bytes = config_.control_msg_bytes;
  for (int i = 0; i < config_.nodes; ++i) {
    const double speed = config_.node_speed_factors.empty()
                             ? 1.0
                             : config_.node_speed_factors[static_cast<std::size_t>(i)];
    // Under the sharded engine each node's hardware schedules on its own
    // shard's heap; node-local events never leave the shard.
    des::Scheduler& node_sched =
        sharded_ != nullptr ? sharded_->shard(shard_map_.shard_of(i)) : sched_;
    nodes_.push_back(
        std::make_unique<cluster::Node>(node_sched, i, config_.node, speed));
    nodes_.back()->set_rack(topo_->rack_of(i));
    via_.add_endpoint({&nodes_.back()->cpu(), &nodes_.back()->nic()});
    pctx.nodes.push_back(nodes_.back().get());
  }
  policy_->attach(pctx);

  // Wire the engine: every component reaches its collaborators through
  // ctx_, and every lifecycle event fans out to the metrics collector.
  ctx_.config = &config_;
  ctx_.trace = &trace_;
  ctx_.sched = &sched_;
  ctx_.router = &router_;
  ctx_.via = &via_;
  ctx_.topology = topo_.get();
  ctx_.flow = flow_.get();
  ctx_.policy = policy_.get();
  ctx_.nodes = &nodes_;
  ctx_.rng = &rng_;
  ctx_.observers = &fanout_;
  admission_ = std::make_unique<engine::AdmissionController>(ctx_);
  arrival_ = std::make_unique<engine::ArrivalSource>(ctx_);
  dispatcher_ = std::make_unique<engine::Dispatcher>(ctx_);
  retry_ = std::make_unique<engine::RetryManager>(ctx_);
  service_ = std::make_unique<engine::ServicePath>(ctx_);
  persistent_ = std::make_unique<engine::PersistentPath>(ctx_);
  overload_ = std::make_unique<engine::OverloadController>(ctx_);
  metrics_ = std::make_unique<engine::MetricsCollector>(ctx_);
  ctx_.admission = admission_.get();
  ctx_.arrival = arrival_.get();
  ctx_.dispatcher = dispatcher_.get();
  ctx_.retry = retry_.get();
  ctx_.service = service_.get();
  ctx_.persistent = persistent_.get();
  ctx_.overload = overload_.get();
  fanout_.add(metrics_.get());
  if (config_.telemetry.enabled) {
    telemetry_ = std::make_unique<telemetry::SimTelemetry>(ctx_, config_.telemetry);
    fanout_.add(telemetry_.get());
  }
  if (config_.obs.active()) {
    recorder_ = std::make_unique<obs::FlightRecorder>(ctx_, config_.obs);
    fanout_.add(recorder_.get());
  }
}

ClusterSimulation::~ClusterSimulation() = default;

SimResult ClusterSimulation::run() {
  L2S_REQUIRE(!ran_);
  ran_ = true;

  int pass = 0;
  if (config_.warmup) {
    // Warm-up replays at nominal stationary load with every chaos source
    // quiet — no faults (armed below), no arrival shaping, no overload
    // defenses (ctx_.measured_pass gates them) — so measurement starts
    // from the warm steady state the chaos is supposed to disrupt.
    policy_->on_pass_start(pass++);
    replay_trace();
    reset_statistics();
  }
  ctx_.measured_pass = true;
  const SimTime measure_start = sched_.now();
  policy_->on_pass_start(pass);
  metrics_->begin_measurement(measure_start);
  if (telemetry_) telemetry_->begin_measurement(measure_start);
  arm_faults(measure_start);
  replay_trace();
  SimResult result = metrics_->collect(measure_start, detector_.get());
  if (telemetry_) {
    // Passive read of the interconnect's link accounting — registered just
    // before the snapshot so per-link gauges ride in it (digest-inert).
    obs::export_link_utilization(telemetry_->registry(), *topo_,
                                 sched_.now() - measure_start);
    result.telemetry =
        std::make_shared<const telemetry::Snapshot>(telemetry_->snapshot());
  }
  if (recorder_ && config_.obs.enabled) {
    result.decisions = std::make_shared<const obs::DecisionTrace>(recorder_->trace());
  }
  return result;
}

void ClusterSimulation::replay_trace() {
  admission_->open();
  overload_->begin_pass();
  arrival_->start();
  overload_->start();
  metrics_->start_sampling();
  if (sharded_ != nullptr) {
    // Sequential merge: global (time, seq) order, bit-identical to the
    // serial drain below — the golden-digest suite holds both to the same
    // pinned digests.
    sharded_->run();
  } else {
    sched_.run();
  }
  L2S_REQUIRE(admission_->drained());
}

void ClusterSimulation::arm_faults(SimTime measure_start) {
  const SimTime detect_delay = seconds_to_simtime(config_.failure_detection_seconds);
  const bool heartbeats = config_.detection.heartbeats;

  if (!config_.fault_plan.empty()) {
    fault::FaultRuntime::Hooks hooks;
    hooks.on_crash = [this, detect_delay, heartbeats](int node, SimTime at) {
      fanout_.on_node_crashed(node, at);
      if (heartbeats) return;  // the heartbeat detector notices by itself
      sched_.after(detect_delay, [this, node]() {
        policy_->on_node_failed(node);
        fanout_.on_node_detected(node, sched_.now());
      });
    };
    hooks.on_recover = [this, detect_delay, heartbeats](int node, SimTime at) {
      fanout_.on_node_repaired(node, at);
      if (heartbeats) return;
      sched_.after(detect_delay, [this, node]() {
        policy_->on_node_recovered(node);
        fanout_.on_node_readmitted(node, sched_.now());
      });
    };
    std::vector<cluster::Node*> ptrs;
    for (const auto& n : nodes_) ptrs.push_back(n.get());
    // The fault Rng is derived from the seed without touching rng_, so
    // adding message faults never perturbs the trace-side random streams.
    fault_runtime_ = std::make_unique<fault::FaultRuntime>(
        sched_, std::move(ptrs), config_.fault_plan,
        Rng(config_.seed ^ 0xFA17'5EED'0000'0001ULL));
    via_.set_fault_model(fault_runtime_.get());
    fault_runtime_->arm(measure_start, std::move(hooks));
  }

  if (heartbeats) {
    std::vector<cluster::Node*> ptrs;
    for (const auto& n : nodes_) ptrs.push_back(n.get());
    detector_ = std::make_unique<fault::FailureDetector>(
        sched_, via_, std::move(ptrs), config_.detection, config_.control_msg_bytes);
    detector_->start(
        [this]() { return admission_->active() && !admission_->drained(); },
        [this](int node, SimTime at) {
          policy_->on_node_suspected(node);
          fanout_.on_node_detected(node, at);
        },
        [this](int node, SimTime at) {
          policy_->on_node_recovered(node);
          fanout_.on_node_readmitted(node, at);
        });
  }
}

void ClusterSimulation::reset_statistics() {
  for (auto& n : nodes_) n->reset_stats();
  router_.resource().reset_stats();
  topo_->reset_stats();
  if (flow_) flow_->reset_stats();
  via_.reset_stats();
  policy_->reset_counters();
  metrics_->reset();
  if (telemetry_) telemetry_->reset();
  // The recorder deliberately survives this reset: warm-up decisions stay
  // in the log (tagged pass = 0) unless the config asked to drop them —
  // a divergence between two runs usually begins during warm-up, and the
  // diff debugger wants to see it there.
  if (recorder_ && !config_.obs.include_warmup) recorder_->clear();
}

}  // namespace l2s::core
