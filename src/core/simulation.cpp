#include "l2sim/core/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "l2sim/common/error.hpp"

namespace l2s::core {

void SimConfig::validate() const {
  if (nodes < 1) throw_error("SimConfig: nodes must be >= 1");
  if (buffer_slots_per_node < 1) throw_error("SimConfig: buffer_slots_per_node must be >= 1");
  if (request_msg_bytes == 0) throw_error("SimConfig: request_msg_bytes must be positive");
  if (mean_requests_per_connection < 1.0)
    throw_error("SimConfig: mean_requests_per_connection must be >= 1");
  for (const auto& f : failures) {
    if (f.node < 0 || f.node >= nodes) throw_error("SimConfig: failure node out of range");
    if (f.at_seconds < 0.0) throw_error("SimConfig: failure time must be nonnegative");
  }
  if (failure_detection_seconds < 0.0)
    throw_error("SimConfig: failure_detection_seconds must be nonnegative");
  if (failure_client_timeout_seconds < 0.0)
    throw_error("SimConfig: failure_client_timeout_seconds must be nonnegative");
  fault_plan.validate(nodes);
  detection.validate();
  if (retry.max_retries < 0) throw_error("SimConfig: retry.max_retries must be >= 0");
  if (retry.initial_backoff_seconds < 0.0 || retry.max_backoff_seconds < 0.0 ||
      retry.deadline_seconds < 0.0 || retry.attempt_timeout_seconds < 0.0)
    throw_error("SimConfig: retry times must be nonnegative");
  if (retry.backoff_multiplier < 1.0)
    throw_error("SimConfig: retry.backoff_multiplier must be >= 1");
  if (goodput_interval_seconds < 0.0)
    throw_error("SimConfig: goodput_interval_seconds must be nonnegative");
  if (fault_plan.lossy() && retry.deadline_seconds <= 0.0 &&
      retry.attempt_timeout_seconds <= 0.0)
    throw_error(
        "SimConfig: a lossy fault plan requires retry.deadline_seconds or "
        "retry.attempt_timeout_seconds (a lost hand-off would otherwise hold "
        "its admission slot forever)");
  if (open_loop_arrival_rate < 0.0)
    throw_error("SimConfig: open_loop_arrival_rate must be nonnegative");
  if (!node_speed_factors.empty()) {
    if (node_speed_factors.size() != static_cast<std::size_t>(nodes))
      throw_error("SimConfig: node_speed_factors must have one entry per node");
    for (const double f : node_speed_factors)
      if (f <= 0.0) throw_error("SimConfig: node speed factors must be positive");
  }
}

ClusterSimulation::ClusterSimulation(SimConfig config, const trace::Trace& trace,
                                     std::unique_ptr<policy::Policy> policy)
    : config_(config),
      trace_(trace),
      fabric_(sched_, config.net.switch_latency()),
      router_(sched_, config_.net),
      via_(sched_, fabric_, config_.net),
      policy_(std::move(policy)),
      rng_(config.seed) {
  config_.validate();
  L2S_REQUIRE(policy_ != nullptr);
  if (trace_.request_count() == 0) throw_error("ClusterSimulation: empty trace");

  policy::ClusterContext ctx;
  ctx.sched = &sched_;
  ctx.via = &via_;
  ctx.control_msg_bytes = config_.control_msg_bytes;
  for (int i = 0; i < config_.nodes; ++i) {
    const double speed = config_.node_speed_factors.empty()
                             ? 1.0
                             : config_.node_speed_factors[static_cast<std::size_t>(i)];
    nodes_.push_back(std::make_unique<cluster::Node>(sched_, i, config_.node, speed));
    via_.add_endpoint({&nodes_.back()->cpu(), &nodes_.back()->nic()});
    ctx.nodes.push_back(nodes_.back().get());
  }
  policy_->attach(ctx);
}

ClusterSimulation::~ClusterSimulation() = default;

SimResult ClusterSimulation::run() {
  L2S_REQUIRE(!ran_);
  ran_ = true;

  int pass = 0;
  if (config_.warmup) {
    policy_->on_pass_start(pass++);
    replay_trace();
    reset_statistics();
  }
  const SimTime measure_start = sched_.now();
  policy_->on_pass_start(pass);
  arm_faults(measure_start);
  if (!config_.timeline_csv_path.empty()) {
    timeline_ = std::make_unique<std::ofstream>(config_.timeline_csv_path);
    if (!*timeline_) throw_error("cannot open timeline CSV: " + config_.timeline_csv_path);
    *timeline_ << "time_s";
    for (int n = 0; n < config_.nodes; ++n) *timeline_ << ",node" << n;
    *timeline_ << '\n';
  }
  replay_trace();
  return collect(measure_start);
}

bool ClusterSimulation::node_alive(int id) const {
  return nodes_[static_cast<std::size_t>(id)]->alive();
}

void ClusterSimulation::arm_faults(SimTime measure_start) {
  availability_.begin(measure_start,
                      seconds_to_simtime(config_.goodput_interval_seconds),
                      config_.nodes);

  // Legacy shim: SimConfig::failures entries become plan crashes.
  fault::FaultPlan plan = config_.fault_plan;
  for (const auto& f : config_.failures)
    plan.crashes.push_back({f.node, f.at_seconds});

  const SimTime detect_delay = seconds_to_simtime(config_.failure_detection_seconds);
  const bool heartbeats = config_.detection.heartbeats;

  if (!plan.empty()) {
    fault::FaultRuntime::Hooks hooks;
    hooks.on_crash = [this, detect_delay, heartbeats](int node, SimTime at) {
      availability_.record_crash(node, at);
      if (heartbeats) return;  // the heartbeat detector notices by itself
      sched_.after(detect_delay, [this, node]() {
        policy_->on_node_failed(node);
        availability_.record_detection(node, sched_.now());
      });
    };
    hooks.on_recover = [this, detect_delay, heartbeats](int node, SimTime at) {
      availability_.record_repair(node, at);
      if (heartbeats) return;
      sched_.after(detect_delay, [this, node]() {
        policy_->on_node_recovered(node);
        availability_.record_readmission(node, sched_.now());
      });
    };
    std::vector<cluster::Node*> ptrs;
    for (const auto& n : nodes_) ptrs.push_back(n.get());
    // The fault Rng is derived from the seed without touching rng_, so
    // adding message faults never perturbs the trace-side random streams.
    fault_runtime_ = std::make_unique<fault::FaultRuntime>(
        sched_, std::move(ptrs), std::move(plan),
        Rng(config_.seed ^ 0xFA17'5EED'0000'0001ULL));
    via_.set_fault_model(fault_runtime_.get());
    fault_runtime_->arm(measure_start, std::move(hooks));
  }

  if (heartbeats) {
    std::vector<cluster::Node*> ptrs;
    for (const auto& n : nodes_) ptrs.push_back(n.get());
    detector_ = std::make_unique<fault::FailureDetector>(
        sched_, via_, std::move(ptrs), config_.detection, config_.control_msg_bytes);
    detector_->start(
        [this]() {
          return injector_ && !(injector_->exhausted() && injector_->in_flight() == 0);
        },
        [this](int node, SimTime at) {
          policy_->on_node_suspected(node);
          availability_.record_detection(node, at);
        },
        [this](int node, SimTime at) {
          policy_->on_node_recovered(node);
          availability_.record_readmission(node, at);
        });
  }
}

void ClusterSimulation::release_service_count(const ConnPtr& conn) {
  if (!conn->counted_in_service) return;
  conn->counted_in_service = false;
  cluster::Node& n = *nodes_[static_cast<std::size_t>(conn->service_node)];
  // A dead node's bookkeeping died with it; a recovered node restarted
  // with a zeroed count, so a pre-crash epoch must not decrement it.
  if (n.alive() && n.epoch() == conn->service_epoch) n.connection_closed();
}

bool ClusterSimulation::service_current(const ConnPtr& conn) const {
  const cluster::Node& n = *nodes_[static_cast<std::size_t>(conn->service_node)];
  if (!n.alive()) return false;
  return !conn->counted_in_service || n.epoch() == conn->service_epoch;
}

void ClusterSimulation::fail_connection(const ConnPtr& conn, std::uint64_t& bucket,
                                        SimTime slot_hold) {
  if (conn->stage == cluster::ConnectionStage::kDone) return;
  release_service_count(conn);
  conn->stage = cluster::ConnectionStage::kDone;
  ++failed_;
  ++bucket;
  availability_.record_failure(sched_.now());
  if (slot_hold > 0) {
    sched_.after(slot_hold, [this]() { injector_->on_complete(); });
  } else {
    injector_->on_complete();
  }
}

void ClusterSimulation::abort_connection(const ConnPtr& conn) {
  if (conn->stage == cluster::ConnectionStage::kDone) return;
  if (conn->retries_used < static_cast<std::uint32_t>(config_.retry.max_retries)) {
    release_service_count(conn);
    schedule_retry(conn);
    return;
  }
  // The client holds the connection until its timeout expires; only then
  // does the admission slot free up for the next request.
  fail_connection(conn, failed_retries_,
                  seconds_to_simtime(config_.failure_client_timeout_seconds));
}

void ClusterSimulation::schedule_retry(const ConnPtr& conn) {
  ++conn->retries_used;
  ++conn->attempt;
  ++retry_attempts_;
  availability_.record_retry();
  conn->stage = cluster::ConnectionStage::kArriving;
  const auto& rp = config_.retry;
  double backoff = rp.initial_backoff_seconds;
  for (std::uint32_t i = 1; i < conn->retries_used; ++i) backoff *= rp.backoff_multiplier;
  backoff = std::min(backoff, rp.max_backoff_seconds);
  const auto att = conn->attempt;
  sched_.after(seconds_to_simtime(backoff), [this, conn, att]() {
    if (attempt_stale(conn, att)) return;  // the deadline fired during backoff
    start_attempt(conn);
  });
}

void ClusterSimulation::arm_deadline(const ConnPtr& conn) {
  const double ddl = config_.retry.deadline_seconds;
  if (ddl <= 0.0) return;
  conn->deadline_at = sched_.now() + seconds_to_simtime(ddl);
  const SimTime target = conn->deadline_at;
  sched_.after(seconds_to_simtime(ddl), [this, conn, target]() {
    if (conn->stage == cluster::ConnectionStage::kDone) return;
    if (conn->deadline_at != target) return;  // a later request re-armed it
    fail_connection(conn, failed_deadline_, 0);
  });
}

void ClusterSimulation::replay_trace() {
  const std::uint64_t slots =
      config_.buffer_slots_per_node * static_cast<std::uint64_t>(config_.nodes);
  injector_ = std::make_unique<cluster::Injector>(trace_, slots);
  if (config_.open_loop_arrival_rate > 0.0) {
    // Open loop: a Poisson pump admits requests at the configured rate;
    // the injector tracks the trace cursor and in-flight slots only.
    sched_.after(0, [this]() { open_loop_arrival(); });
  } else {
    injector_->start(
        [this](std::uint64_t seq, const trace::Request& r) { inject(seq, r); });
  }
  if (config_.load_sample_interval > 0 && config_.nodes > 1)
    sched_.after(config_.load_sample_interval, [this]() { sample_loads(); });
  sched_.run();
  L2S_REQUIRE(injector_->exhausted() && injector_->in_flight() == 0);
}

void ClusterSimulation::open_loop_arrival() {
  std::uint64_t seq = 0;
  trace::Request r{};
  if (injector_->try_admit(seq, r)) {
    inject(seq, r);
  } else if (!injector_->exhausted()) {
    // The admission buffers are full: the arrival is refused and the
    // request it would have carried is counted as failed (finite-buffer
    // semantics above saturation).
    if (injector_->try_take(seq, r)) {
      ++failed_;
      ++failed_rejected_;
      availability_.record_failure(sched_.now());
    }
  }
  if (!injector_->exhausted()) {
    const SimTime gap =
        seconds_to_simtime(rng_.next_exponential(config_.open_loop_arrival_rate));
    sched_.after(gap, [this]() { open_loop_arrival(); });
  }
}

void ClusterSimulation::sample_loads() {
  // The sampler rides along with the run and stops once the work drains
  // (a perpetual self-rescheduling event would keep the scheduler alive).
  if (injector_->exhausted() && injector_->in_flight() == 0) return;
  double sum = 0.0;
  double sq = 0.0;
  double max = 0.0;
  for (const auto& n : nodes_) {
    const auto load = static_cast<double>(n->open_connections());
    sum += load;
    sq += load * load;
    max = std::max(max, load);
  }
  const auto count = static_cast<double>(nodes_.size());
  const double mean = sum / count;
  if (mean > 0.0) {
    const double variance = std::max(0.0, sq / count - mean * mean);
    load_cov_.add(std::sqrt(variance) / mean);
    load_max_mean_.add(max / mean);
  }
  if (timeline_ && timeline_->is_open()) {
    *timeline_ << simtime_to_seconds(sched_.now());
    for (const auto& n : nodes_) *timeline_ << ',' << n->open_connections();
    *timeline_ << '\n';
  }
  sched_.after(config_.load_sample_interval, [this]() { sample_loads(); });
}

std::uint32_t ClusterSimulation::sample_connection_length() {
  const double mean = config_.mean_requests_per_connection;
  if (mean <= 1.0) return 1;
  // Geometric on {1, 2, ...} with the requested mean.
  const double p = 1.0 / mean;
  double u = rng_.next_double();
  while (u <= 0.0) u = rng_.next_double();
  const double k = std::floor(std::log(u) / std::log(1.0 - p));
  return 1 + static_cast<std::uint32_t>(std::min(k, 1e6));
}

void ClusterSimulation::inject(std::uint64_t seq, const trace::Request& r) {
  auto conn = std::make_shared<cluster::Connection>();
  conn->id = seq;
  conn->request = r;
  conn->first_arrival = sched_.now();
  start_attempt(conn);
  conn->remaining_requests = sample_connection_length() - 1;
  arm_deadline(conn);
}

void ClusterSimulation::start_attempt(const ConnPtr& conn) {
  conn->arrival = sched_.now();
  conn->stage = cluster::ConnectionStage::kArriving;
  conn->service_node = -1;
  conn->cache_hit = false;
  if (conn->attempt == 0) {
    conn->entry_node = policy_->entry_node(conn->id, conn->request);
    if (config_.dns_entry_skew > 0.0 && policy_->entry_is_dns() &&
        rng_.next_double() < config_.dns_entry_skew) {
      // A cached DNS translation: the client population behind some name
      // server reuses an old answer. Popular resolvers concentrate on a few
      // nodes (Zipf over node ids).
      const auto n = static_cast<double>(config_.nodes);
      const double u = rng_.next_double();
      const double h = std::exp(u * std::log(n + 1.0));  // Zipf(1)-ish via inverse
      conn->entry_node = std::min(config_.nodes - 1, static_cast<int>(h) - 1);
    }
  } else {
    // A retrying client re-resolves: perturbing the sequence steers DNS
    // rotation or switch selection toward a different node, and the
    // cached-translation skew does not reapply (that answer just failed).
    const std::uint64_t sel = conn->id ^ (0x9E3779B97F4A7C15ULL * conn->attempt);
    conn->entry_node = policy_->entry_node(sel, conn->request);
  }

  const auto att = conn->attempt;
  if (config_.retry.attempt_timeout_seconds > 0.0) {
    sched_.after(seconds_to_simtime(config_.retry.attempt_timeout_seconds),
                 [this, conn, att]() {
                   if (attempt_stale(conn, att)) return;
                   // The attempt hangs (lost hand-off, dead node, glacial
                   // queue): abandon it and retry or give up.
                   release_service_count(conn);
                   if (conn->retries_used <
                       static_cast<std::uint32_t>(config_.retry.max_retries)) {
                     schedule_retry(conn);
                   } else {
                     fail_connection(conn, failed_retries_, 0);
                   }
                 });
  }

  // Client request: router, then the entry node's NI-in, then parse.
  router_.forward(config_.request_msg_bytes, [this, conn, att]() {
    if (attempt_stale(conn, att)) return;
    if (!node_alive(conn->entry_node)) {
      abort_connection(conn);  // connection refused: the entry node is down
      return;
    }
    cluster::Node& entry = *nodes_[static_cast<std::size_t>(conn->entry_node)];
    entry.nic().rx().submit(config_.net.ni_request_time(), [this, conn, att]() {
      if (attempt_stale(conn, att)) return;
      if (!node_alive(conn->entry_node)) {
        abort_connection(conn);
        return;
      }
      cluster::Node& n = *nodes_[static_cast<std::size_t>(conn->entry_node)];
      conn->stage = cluster::ConnectionStage::kParsing;
      n.cpu().submit(n.parse_time(), [this, conn, att]() {
        if (attempt_stale(conn, att)) return;
        distribute(conn);
      });
    });
  });
}

void ClusterSimulation::distribute(const ConnPtr& conn) {
  if (conn->stage == cluster::ConnectionStage::kDone) return;
  if (!node_alive(conn->entry_node)) {
    abort_connection(conn);
    return;
  }
  if (policy_->decides_asynchronously()) {
    const auto att = conn->attempt;
    policy_->select_service_node_async(conn->entry_node, conn->request,
                                       [this, conn, att](int target) {
                                         if (attempt_stale(conn, att)) return;
                                         dispatch_to(conn, target);
                                       });
    return;
  }
  dispatch_to(conn, policy_->select_service_node(conn->entry_node, conn->request));
}

void ClusterSimulation::dispatch_to(const ConnPtr& conn, int target) {
  if (conn->stage == cluster::ConnectionStage::kDone) return;
  conn->t_decided = sched_.now();
  if (target < 0) {
    // The policy could not produce a decision (e.g. its dispatcher died):
    // the client's request fails.
    abort_connection(conn);
    return;
  }
  L2S_REQUIRE(target < config_.nodes);
  conn->service_node = target;

  if (target == conn->entry_node) {
    begin_service(conn, /*opening=*/true);
    return;
  }

  ++forwarded_;
  conn->stage = cluster::ConnectionStage::kForwarding;
  const auto att = conn->attempt;
  cluster::Node& entry = *nodes_[static_cast<std::size_t>(conn->entry_node)];
  // Hand-off: policy-specific CPU cost at the entry node, the wire
  // transfer, and the VIA receive overhead at the target. A dropped
  // hand-off message leaves the attempt hanging until its timeout.
  entry.cpu().submit(policy_->forward_cpu_time(conn->entry_node), [this, conn, att]() {
    if (attempt_stale(conn, att)) return;
    via_.transmit(conn->entry_node, conn->service_node, config_.request_msg_bytes,
                  [this, conn, att]() {
                    if (attempt_stale(conn, att)) return;
                    cluster::Node& target_node =
                        *nodes_[static_cast<std::size_t>(conn->service_node)];
                    target_node.cpu().submit(config_.net.cpu_msg_time(),
                                             [this, conn, att]() {
                                               if (attempt_stale(conn, att)) return;
                                               begin_service(conn, /*opening=*/true);
                                             });
                  });
  });
}

void ClusterSimulation::begin_service(const ConnPtr& conn, bool opening) {
  if (conn->stage == cluster::ConnectionStage::kDone) return;
  if (!service_current(conn)) {
    abort_connection(conn);
    return;
  }
  cluster::Node& n = *nodes_[static_cast<std::size_t>(conn->service_node)];
  conn->stage = cluster::ConnectionStage::kServing;
  conn->t_service = sched_.now();
  if (opening) {
    n.connection_opened();
    conn->counted_in_service = true;
    conn->service_epoch = n.epoch();
    policy_->on_service_start(conn->service_node, conn->request);
  }

  if (n.file_cache().lookup(conn->request.file)) {
    conn->cache_hit = true;
    conn->t_disk_done = sched_.now();
    reply_path(conn);
    return;
  }
  // Miss: read the whole file from disk, make it resident, then reply.
  const auto att = conn->attempt;
  const Bytes file_bytes = trace_.files().size_of(conn->request.file);
  n.disk().read(file_bytes, [this, conn, file_bytes, att]() {
    if (attempt_stale(conn, att)) return;
    if (!service_current(conn)) {
      abort_connection(conn);
      return;
    }
    cluster::Node& node = *nodes_[static_cast<std::size_t>(conn->service_node)];
    node.file_cache().insert(conn->request.file, file_bytes);
    conn->t_disk_done = sched_.now();
    reply_path(conn);
  });
}

void ClusterSimulation::reply_path(const ConnPtr& conn) {
  if (conn->stage == cluster::ConnectionStage::kDone) return;
  if (!service_current(conn)) {
    abort_connection(conn);
    return;
  }
  const auto att = conn->attempt;
  cluster::Node& n = *nodes_[static_cast<std::size_t>(conn->service_node)];
  const Bytes bytes = conn->request.bytes;
  n.cpu().submit(n.reply_time(bytes), [this, conn, bytes, att]() {
    if (attempt_stale(conn, att)) return;
    cluster::Node& node = *nodes_[static_cast<std::size_t>(conn->service_node)];
    node.nic().tx().submit(config_.net.ni_reply_time(bytes), [this, conn, bytes, att]() {
      if (attempt_stale(conn, att)) return;
      router_.forward(bytes, [this, conn, att]() {
        if (attempt_stale(conn, att)) return;
        request_finished(conn);
      });
    });
  });
}

void ClusterSimulation::request_finished(const ConnPtr& conn) {
  if (conn->stage == cluster::ConnectionStage::kDone) return;
  conn->completion = sched_.now();
  ++completed_;
  if (conn->retries_used > 0) ++completed_after_retry_;
  availability_.record_completion(conn->completion);
  ++conn->requests_served;
  // Client-perceived latency spans every attempt, from the first arrival.
  const double response_ms =
      simtime_to_seconds(conn->completion - conn->first_arrival) * 1e3;
  response_times_.add(response_ms);
  response_hist_.add(response_ms);
  stage_entry_.add(simtime_ms(conn->t_decided - conn->arrival));
  stage_forward_.add(simtime_ms(conn->t_service - conn->t_decided));
  stage_disk_.add(simtime_ms(conn->t_disk_done - conn->t_service));
  stage_reply_.add(simtime_ms(conn->completion - conn->t_disk_done));

  if (conn->remaining_requests > 0) {
    std::uint64_t seq = 0;
    trace::Request next{};
    if (injector_->try_take(seq, next)) {
      --conn->remaining_requests;
      conn->id = seq;
      conn->request = next;
      // A fresh request on the same connection: new attempt id (stale
      // timers from the previous request must not touch it) and a fresh
      // retry budget.
      ++conn->attempt;
      conn->retries_used = 0;
      continue_connection(conn);
      return;
    }
  }
  close_connection(conn);
}

void ClusterSimulation::close_connection(const ConnPtr& conn) {
  conn->stage = cluster::ConnectionStage::kDone;
  cluster::Node& n = *nodes_[static_cast<std::size_t>(conn->service_node)];
  // A completion that limps in across its node's crash+restart must not
  // touch the fresh incarnation's count (or feed the policy a stale event).
  const bool same_epoch = n.epoch() == conn->service_epoch;
  if (same_epoch) n.connection_closed();
  conn->counted_in_service = false;
  ++connections_;
  if (same_epoch) policy_->on_complete(conn->service_node, conn->request);
  injector_->on_complete();
}

void ClusterSimulation::continue_connection(const ConnPtr& conn) {
  // The client pipelines its next request over the open connection: it
  // passes the router and the current node's NI-in, is parsed, and then
  // redistributed without the connection-establishment work.
  const auto att = conn->attempt;
  router_.forward(config_.request_msg_bytes, [this, conn, att]() {
    if (attempt_stale(conn, att)) return;
    if (!service_current(conn)) {
      abort_connection(conn);
      return;
    }
    cluster::Node& n = *nodes_[static_cast<std::size_t>(conn->service_node)];
    n.nic().rx().submit(config_.net.ni_request_time(), [this, conn, att]() {
      if (attempt_stale(conn, att)) return;
      if (!service_current(conn)) {
        abort_connection(conn);
        return;
      }
      cluster::Node& node = *nodes_[static_cast<std::size_t>(conn->service_node)];
      conn->arrival = sched_.now();
      conn->first_arrival = conn->arrival;
      arm_deadline(conn);
      conn->stage = cluster::ConnectionStage::kParsing;
      node.cpu().submit(node.parse_time(), [this, conn, att]() {
        if (attempt_stale(conn, att)) return;
        persistent_distribute(conn);
      });
    });
  });
}

void ClusterSimulation::persistent_distribute(const ConnPtr& conn) {
  if (conn->stage == cluster::ConnectionStage::kDone) return;
  if (!service_current(conn)) {
    abort_connection(conn);
    return;
  }
  const int current = conn->service_node;
  const int target = policy_->select_next_in_connection(current, conn->request);
  L2S_REQUIRE(target >= 0 && target < config_.nodes);
  if (target == current) {
    begin_service(conn, /*opening=*/false);
    return;
  }
  if (config_.persistent_mode == PersistentMode::kConnectionHandoff) {
    migrate_connection(conn, target);
  } else {
    remote_fetch(conn, target);
  }
}

void ClusterSimulation::migrate_connection(const ConnPtr& conn, int target) {
  ++migrations_;
  ++forwarded_;
  conn->stage = cluster::ConnectionStage::kForwarding;
  const int from = conn->service_node;
  const auto att = conn->attempt;
  cluster::Node& old_node = *nodes_[static_cast<std::size_t>(from)];
  old_node.cpu().submit(policy_->forward_cpu_time(from), [this, conn, from, target, att]() {
    if (attempt_stale(conn, att)) return;
    via_.transmit(from, target, config_.request_msg_bytes, [this, conn, from, target, att]() {
      if (attempt_stale(conn, att)) return;
      cluster::Node& new_node = *nodes_[static_cast<std::size_t>(target)];
      new_node.cpu().submit(config_.net.cpu_msg_time(), [this, conn, from, target, att]() {
        if (attempt_stale(conn, att)) return;
        if (!node_alive(target)) {
          abort_connection(conn);
          return;
        }
        release_service_count(conn);  // `from` loses the connection (if it is still that incarnation)
        nodes_[static_cast<std::size_t>(target)]->connection_opened();
        conn->counted_in_service = true;
        conn->service_node = target;
        conn->service_epoch = nodes_[static_cast<std::size_t>(target)]->epoch();
        policy_->on_connection_migrated(from, target, conn->request);
        begin_service(conn, /*opening=*/false);
      });
    });
  });
}

void ClusterSimulation::remote_fetch(const ConnPtr& conn, int owner) {
  ++remote_fetches_;
  ++forwarded_;
  // Back-end request forwarding: the connection stays put; the caching
  // node supplies the content over the cluster network and the current
  // node replies to the client. The fetched file is *not* inserted into
  // the local cache (proxy semantics).
  const int current = conn->service_node;
  const auto att = conn->attempt;
  cluster::Node& cur = *nodes_[static_cast<std::size_t>(current)];
  cur.cpu().submit(policy_->forward_cpu_time(current), [this, conn, current, owner, att]() {
    if (attempt_stale(conn, att)) return;
    via_.transmit(current, owner, config_.request_msg_bytes, [this, conn, current, owner,
                                                             att]() {
      if (attempt_stale(conn, att)) return;
      cluster::Node& own = *nodes_[static_cast<std::size_t>(owner)];
      own.cpu().submit(config_.net.cpu_msg_time(), [this, conn, current, owner, att]() {
        if (attempt_stale(conn, att)) return;
        if (!node_alive(owner) || !node_alive(current)) {
          abort_connection(conn);
          return;
        }
        cluster::Node& o = *nodes_[static_cast<std::size_t>(owner)];
        const Bytes file_bytes = trace_.files().size_of(conn->request.file);
        auto send_back = [this, conn, current, owner, file_bytes, att]() {
          cluster::Node& src = *nodes_[static_cast<std::size_t>(owner)];
          // Memory-to-NIC copy at the owner, bulk transfer, then the
          // normal reply path at the connection's node.
          src.cpu().submit(src.reply_time(conn->request.bytes), [this, conn, current,
                                                                 owner, att]() {
            if (attempt_stale(conn, att)) return;
            via_.transmit(owner, current, conn->request.bytes, [this, conn, current,
                                                                att]() {
              if (attempt_stale(conn, att)) return;
              cluster::Node& c = *nodes_[static_cast<std::size_t>(current)];
              c.cpu().submit(config_.net.cpu_msg_time(), [this, conn, att]() {
                if (attempt_stale(conn, att)) return;
                reply_path(conn);
              });
            });
          });
        };
        if (o.file_cache().lookup(conn->request.file)) {
          send_back();
        } else {
          o.disk().read(file_bytes, [this, owner, conn, file_bytes, send_back, att]() {
            if (attempt_stale(conn, att)) return;
            nodes_[static_cast<std::size_t>(owner)]->file_cache().insert(conn->request.file,
                                                                         file_bytes);
            send_back();
          });
        }
      });
    });
  });
}

void ClusterSimulation::reset_statistics() {
  for (auto& n : nodes_) n->reset_stats();
  router_.resource().reset_stats();
  fabric_.reset_stats();
  via_.reset_stats();
  policy_->reset_counters();
  completed_ = 0;
  connections_ = 0;
  forwarded_ = 0;
  migrations_ = 0;
  remote_fetches_ = 0;
  failed_ = 0;
  failed_deadline_ = 0;
  failed_retries_ = 0;
  failed_rejected_ = 0;
  completed_after_retry_ = 0;
  retry_attempts_ = 0;
  response_times_.reset();
  response_hist_ = stats::LogHistogram(0.01, 1.3, 64);
  stage_entry_.reset();
  stage_forward_.reset();
  stage_disk_.reset();
  stage_reply_.reset();
  load_cov_.reset();
  load_max_mean_.reset();
}

SimResult ClusterSimulation::collect(SimTime measure_start) const {
  SimResult r;
  r.policy = policy_->name();
  r.trace = trace_.name();
  r.nodes = config_.nodes;
  r.completed = completed_;
  const SimTime elapsed = sched_.now() - measure_start;
  r.elapsed_seconds = simtime_to_seconds(elapsed);
  r.throughput_rps =
      r.elapsed_seconds > 0.0 ? static_cast<double>(completed_) / r.elapsed_seconds : 0.0;

  cache::CacheStats cache_totals;
  double idle_sum = 0.0;
  for (const auto& n : nodes_) {
    cache_totals.merge(n->file_cache().stats());
    const double util = n->cpu().utilization(elapsed);
    r.node_cpu_utilization.push_back(util);
    idle_sum += 1.0 - util;
  }
  r.hit_rate = cache_totals.hit_rate();
  r.miss_rate = cache_totals.miss_rate();
  r.cpu_idle_fraction = idle_sum / static_cast<double>(config_.nodes);

  r.forwarded = forwarded_;
  r.forwarded_fraction =
      completed_ == 0 ? 0.0
                      : static_cast<double>(forwarded_) / static_cast<double>(completed_);
  r.connections = connections_;
  r.migrations = migrations_;
  r.remote_fetches = remote_fetches_;
  r.failed = failed_;
  r.failed_deadline = failed_deadline_;
  r.failed_retries_exhausted = failed_retries_;
  r.failed_rejected = failed_rejected_;
  r.completed_after_retry = completed_after_retry_;
  r.retry_attempts = retry_attempts_;
  const std::uint64_t requests = completed_ + failed_;
  r.retry_amplification =
      requests > 0
          ? static_cast<double>(requests + retry_attempts_) / static_cast<double>(requests)
          : 0.0;
  r.via_dropped = via_.messages_dropped();
  r.via_duplicated = via_.messages_duplicated();
  r.via_delayed = via_.messages_delayed();
  r.heartbeats = detector_ ? detector_->heartbeats_sent() : 0;
  if (availability_.detection_latency_ms().count() > 0)
    r.detection_latency_ms = availability_.detection_latency_ms().mean();
  if (availability_.readmission_ms().count() > 0)
    r.time_to_recover_ms = availability_.readmission_ms().mean();
  r.goodput_interval_seconds = config_.goodput_interval_seconds;
  r.goodput_rps = availability_.goodput_rps(sched_.now());

  if (response_times_.count() > 0) {
    r.mean_response_ms = response_times_.mean();
    r.max_response_ms = response_times_.max();
    r.p50_response_ms = response_hist_.quantile(0.50);
    r.p95_response_ms = response_hist_.quantile(0.95);
    r.p99_response_ms = response_hist_.quantile(0.99);
    r.stage_entry_ms = stage_entry_.mean();
    r.stage_forward_ms = stage_forward_.mean();
    r.stage_disk_ms = stage_disk_.mean();
    r.stage_reply_ms = stage_reply_.mean();
  }
  if (load_cov_.count() > 0) {
    r.load_cov = load_cov_.mean();
    r.load_max_over_mean = load_max_mean_.mean();
  }
  r.via_messages = via_.messages_sent();
  r.load_broadcasts = policy_->counters().get("load_broadcasts");
  r.locality_broadcasts =
      policy_->counters().get("locality_broadcasts") + policy_->counters().get("set_create") +
      policy_->counters().get("set_grow") + policy_->counters().get("set_shrink");
  return r;
}

}  // namespace l2s::core
