#include "l2sim/core/experiment.hpp"

#include "l2sim/common/error.hpp"
#include "l2sim/policy/l2s.hpp"
#include "l2sim/policy/lard.hpp"
#include "l2sim/policy/traditional.hpp"

namespace l2s::core {

std::unique_ptr<policy::Policy> make_policy(PolicyKind kind, double set_shrink_seconds) {
  switch (kind) {
    case PolicyKind::kTraditional:
      return std::make_unique<policy::TraditionalPolicy>();
    case PolicyKind::kLard: {
      policy::LardParams params;
      params.set_shrink_seconds = set_shrink_seconds;
      return std::make_unique<policy::LardPolicy>(params);
    }
    case PolicyKind::kL2s: {
      policy::L2sParams params;
      params.set_shrink_seconds = set_shrink_seconds;
      return std::make_unique<policy::L2sPolicy>(params);
    }
  }
  throw_error("make_policy: unknown policy kind");
}

const char* policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kTraditional:
      return "trad";
    case PolicyKind::kLard:
      return "LARD";
    case PolicyKind::kL2s:
      return "L2S";
  }
  return "?";
}

const std::vector<PolicyKind>& all_policies() {
  static const std::vector<PolicyKind> kinds = {PolicyKind::kL2s, PolicyKind::kLard,
                                                PolicyKind::kTraditional};
  return kinds;
}

SimResult run_once(const trace::Trace& trace, SimConfig sim, PolicyKind kind,
                   double set_shrink_seconds) {
  ClusterSimulation simulation(sim, trace, make_policy(kind, set_shrink_seconds));
  return simulation.run();
}

std::vector<double> model_series(const trace::TraceCharacteristics& ch,
                                 const ExperimentConfig& cfg) {
  model::ModelParams params;
  params.cache_bytes = cfg.sim.node.cache_bytes;
  params.replication = cfg.model_replication;
  params.alpha = ch.alpha;
  const model::TraceModel tm(params, ch.to_workload_stats());
  std::vector<double> series;
  series.reserve(cfg.node_counts.size());
  for (const int n : cfg.node_counts) series.push_back(tm.bound(n).conscious.throughput);
  return series;
}

FigureSeries run_throughput_figure(const trace::Trace& trace, const ExperimentConfig& cfg) {
  FigureSeries fig;
  fig.trace_name = trace.name();
  fig.characteristics = trace::characterize(trace);
  fig.node_counts = cfg.node_counts;
  fig.model_rps = model_series(fig.characteristics, cfg);

  for (const int nodes : cfg.node_counts) {
    SimConfig sim = cfg.sim;
    sim.nodes = nodes;
    fig.l2s.push_back(run_once(trace, sim, PolicyKind::kL2s, cfg.set_shrink_seconds));
    fig.lard.push_back(run_once(trace, sim, PolicyKind::kLard, cfg.set_shrink_seconds));
    fig.traditional.push_back(
        run_once(trace, sim, PolicyKind::kTraditional, cfg.set_shrink_seconds));
  }
  return fig;
}

}  // namespace l2s::core
