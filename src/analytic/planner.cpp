#include "l2sim/analytic/planner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "l2sim/common/error.hpp"

namespace l2s::analytic {
namespace {

// Curvature proxy: |second difference of log throughput| along one axis,
// zero at the grid edges. Log space makes the measure scale-free, so a
// knee at 4 nodes scores like one at 16.
double log_curvature(double prev, double here, double next) {
  if (prev <= 0.0 || here <= 0.0 || next <= 0.0) return 0.0;
  return std::abs(std::log(next) - 2.0 * std::log(here) + std::log(prev));
}

void normalize(std::vector<PlannedCell>& cells, double PlannedCell::*field) {
  double peak = 0.0;
  for (const auto& c : cells) peak = std::max(peak, c.*field);
  if (peak <= 0.0) return;
  for (auto& c : cells) c.*field /= peak;
}

}  // namespace

Plan plan_cells(const HierarchicalParams& base, const PlanAxes& axes,
                const PlanWeights& weights) {
  if (axes.node_counts.empty() || axes.cache_mib.empty())
    throw_error("plan_cells: empty grid axes");

  const std::size_t rows = axes.node_counts.size();
  const std::size_t cols = axes.cache_mib.size();

  Plan plan;
  plan.conscious.hit_rates.reserve(rows);
  for (int n : axes.node_counts)
    plan.conscious.hit_rates.push_back(static_cast<double>(n));
  plan.conscious.sizes_kb = axes.cache_mib;
  plan.conscious.values.assign(rows, std::vector<double>(cols, 0.0));
  plan.oblivious = plan.conscious;

  // Solve both policies over the whole grid (stationary solves — a few
  // microseconds each, versus seconds per DES cell).
  std::vector<std::vector<HierarchicalResult>> conscious(rows);
  std::vector<std::vector<std::string>> oblivious_bottleneck(
      rows, std::vector<std::string>(cols));
  for (std::size_t i = 0; i < rows; ++i) {
    conscious[i].reserve(cols);
    for (std::size_t j = 0; j < cols; ++j) {
      HierarchicalParams p = base;
      p.model.nodes = axes.node_counts[i];
      p.model.cache_bytes = static_cast<Bytes>(axes.cache_mib[j] * kMiB);
      p.horizon_seconds = 0.0;  // planner scores the stationary landscape
      p.conscious = true;
      const HierarchicalResult lc = solve_hierarchical(p);
      p.conscious = false;
      const HierarchicalResult lo = solve_hierarchical(p);
      plan.conscious.values[i][j] = lc.max_throughput_rps;
      plan.oblivious.values[i][j] = lo.max_throughput_rps;
      oblivious_bottleneck[i][j] = lo.bottleneck;
      conscious[i].push_back(lc);
    }
  }

  plan.cells.reserve(rows * cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const HierarchicalResult& lc = conscious[i][j];
      PlannedCell cell;
      cell.nodes = axes.node_counts[i];
      cell.cache_mib = axes.cache_mib[j];
      cell.conscious_rps = lc.max_throughput_rps;
      cell.oblivious_rps = plan.oblivious.values[i][j];
      cell.hit_rate = lc.hit_rate;
      cell.bottleneck = lc.bottleneck;

      // Knee: curvature along either axis (whichever is sharper).
      double knee = 0.0;
      if (i > 0 && i + 1 < rows)
        knee = log_curvature(plan.conscious.values[i - 1][j],
                             plan.conscious.values[i][j],
                             plan.conscious.values[i + 1][j]);
      if (j > 0 && j + 1 < cols)
        knee = std::max(knee, log_curvature(plan.conscious.values[i][j - 1],
                                            plan.conscious.values[i][j],
                                            plan.conscious.values[i][j + 1]));
      cell.knee = knee;

      // Crossover: 1 where conscious and oblivious predictions meet,
      // decaying with the log of their ratio.
      if (cell.oblivious_rps > 0.0 && cell.conscious_rps > 0.0)
        cell.crossover =
            std::exp(-4.0 * std::abs(std::log(cell.conscious_rps / cell.oblivious_rps)));

      // Uncertainty: bottleneck flips to any neighbour (either policy),
      // mid-range hit rates, and caches of only a handful of files.
      double uncertainty = 0.0;
      const auto differs = [&](std::size_t ni, std::size_t nj) {
        return conscious[ni][nj].bottleneck != cell.bottleneck ||
               oblivious_bottleneck[ni][nj] != oblivious_bottleneck[i][j];
      };
      if ((i > 0 && differs(i - 1, j)) || (i + 1 < rows && differs(i + 1, j)) ||
          (j > 0 && differs(i, j - 1)) || (j + 1 < cols && differs(i, j + 1)))
        uncertainty += 1.0;
      uncertainty += 1.0 - std::abs(2.0 * cell.hit_rate - 1.0);
      if (lc.cache_files_per_node < 8.0) uncertainty += 1.0;
      cell.uncertainty = uncertainty;

      plan.cells.push_back(std::move(cell));
    }
  }

  normalize(plan.cells, &PlannedCell::knee);
  normalize(plan.cells, &PlannedCell::crossover);
  normalize(plan.cells, &PlannedCell::uncertainty);
  for (auto& c : plan.cells)
    c.score = weights.knee * c.knee + weights.crossover * c.crossover +
              weights.uncertainty * c.uncertainty;

  std::sort(plan.cells.begin(), plan.cells.end(),
            [](const PlannedCell& a, const PlannedCell& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.nodes != b.nodes) return a.nodes < b.nodes;
              return a.cache_mib < b.cache_mib;
            });
  return plan;
}

std::vector<core::ExperimentSpec> plan_to_specs(const core::ExperimentSpec& base,
                                                const Plan& plan, std::size_t top_k) {
  std::vector<core::ExperimentSpec> specs;
  specs.reserve(std::min(top_k, plan.cells.size()));
  for (const auto& cell : plan.cells) {
    if (specs.size() >= top_k) break;
    core::ExperimentSpec spec = base;
    spec.sim.nodes = cell.nodes;
    spec.sim.node.cache_bytes = static_cast<Bytes>(cell.cache_mib * kMiB);
    char suffix[64];
    std::snprintf(suffix, sizeof(suffix), "/n%d-c%gMiB", cell.nodes, cell.cache_mib);
    spec.name = (base.name.empty() ? std::string("plan") : base.name) + suffix;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace l2s::analytic
