#include "l2sim/analytic/che.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "l2sim/common/error.hpp"

namespace l2s::analytic {
namespace {

// -exp(-x) accurate composition helpers: 1 - exp(-x) loses precision for
// tiny x; expm1 keeps the occupancy sum well-conditioned when T is small.
inline double present_probability(double intensity) {
  return -std::expm1(-intensity);
}

// The fixed point re-sums the stream at every Newton iteration, but always
// at the same quadrature ranks — only T moves. Materializing the per-point
// request rates and weights once per solve hoists every rank^-alpha power
// out of the iteration; each pass then costs one expm1 per point, from
// which occupancy, its T-derivative and the hit-rate mass all follow.
struct SampledStream {
  std::vector<double> rate;    // lambda_i = rate_scale * total_rate * p(rank_i)
  std::vector<double> weight;  // quadrature weight of the point
};

SampledStream sample_stream(const ZipfPopularity& pop,
                            const std::vector<RankClass>& classes,
                            double total_rate) {
  SampledStream s;
  for (const auto& c : classes) {
    const double scale = c.rate_scale * total_rate;
    strided_points(c.first, c.last, c.stride, [&](double rank, double weight) {
      s.rate.push_back(scale * pop.prob(rank));
      s.weight.push_back(weight);
    });
  }
  return s;
}

struct StreamSums {
  double occupancy = 0.0;   // sum (1 - e^-lambda T)
  double derivative = 0.0;  // d occupancy / dT = sum lambda e^-lambda T
  double hit_rate_mass = 0.0;  // sum lambda (1 - e^-lambda T)
};

StreamSums stream_sums(const SampledStream& s, double t) {
  StreamSums sums;
  for (std::size_t i = 0; i < s.rate.size(); ++i) {
    const double lambda = s.rate[i];
    const double present = present_probability(lambda * t);
    const double w = s.weight[i];
    sums.occupancy += w * present;
    sums.derivative += w * lambda * (1.0 - present);
    sums.hit_rate_mass += w * lambda * present;
  }
  return sums;
}

double stream_file_count(const std::vector<RankClass>& classes) {
  double count = 0.0;
  for (const auto& c : classes) count += strided_count(c.first, c.last, c.stride);
  return count;
}

double stream_total_rate(const SampledStream& s) {
  double rate = 0.0;
  for (std::size_t i = 0; i < s.rate.size(); ++i) rate += s.weight[i] * s.rate[i];
  return rate;
}

}  // namespace

CheSolution che_solve(const ZipfPopularity& pop, const std::vector<RankClass>& classes,
                      double total_rate, double cache_files) {
  if (classes.empty()) throw_error("che_solve: no rank classes");
  if (cache_files <= 0.0) throw_error("che_solve: cache capacity must be positive");
  if (total_rate <= 0.0) throw_error("che_solve: request rate must be positive");
  for (const auto& c : classes) {
    if (c.stride <= 0.0 || c.rate_scale < 0.0 || c.first < 1.0)
      throw_error("che_solve: malformed rank class");
  }

  CheSolution sol;
  sol.stream_files = stream_file_count(classes);
  if (sol.stream_files <= 0.0) throw_error("che_solve: stream is empty");

  if (sol.stream_files <= cache_files) {
    // The whole working set fits: LRU never evicts a live file. The rate
    // sum is only needed by callers, so the sampling pass still runs.
    sol.stream_rate = stream_total_rate(sample_stream(pop, classes, total_rate));
    if (sol.stream_rate <= 0.0) throw_error("che_solve: stream is empty");
    sol.everything_fits = true;
    sol.characteristic_seconds = std::numeric_limits<double>::infinity();
    sol.hit_rate = 1.0;
    sol.occupancy_files = sol.stream_files;
    return sol;
  }

  const SampledStream stream = sample_stream(pop, classes, total_rate);
  sol.stream_rate = stream_total_rate(stream);
  if (sol.stream_rate <= 0.0) throw_error("che_solve: stream is empty");

  // occupancy(T) grows monotonically from 0 to stream_files, so the root
  // of occupancy(T) = cache_files brackets by rate doubling. A sensible
  // first guess: cache_files requests of the stream take cache_files/rate
  // seconds, and occupancy(T) <= rate*T, so the root is at least that.
  double lo = cache_files / sol.stream_rate;
  while (stream_sums(stream, lo).occupancy > cache_files) lo *= 0.5;
  double hi = lo;
  while (stream_sums(stream, hi).occupancy < cache_files) hi *= 2.0;

  // Safeguarded Newton on T: quadratic convergence near the root, falling
  // back to bisection whenever a step leaves the bracket.
  double t = 0.5 * (lo + hi);
  StreamSums sums;
  for (int iter = 0; iter < 128; ++iter) {
    sums = stream_sums(stream, t);
    const double err = sums.occupancy - cache_files;
    if (std::abs(err) <= 1e-10 * cache_files || hi - lo <= 1e-12 * t) break;
    if (err > 0.0)
      hi = t;
    else
      lo = t;
    double next = t - err / std::max(sums.derivative, 1e-300);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    t = next;
  }
  sol.characteristic_seconds = t;
  sol.occupancy_files = sums.occupancy;
  sol.hit_rate = std::min(1.0, sums.hit_rate_mass / sol.stream_rate);
  return sol;
}

CheSolution che_lru(const ZipfPopularity& pop, double cache_files, double total_rate) {
  return che_solve(pop, {{1.0, pop.files, 1.0, 1.0}}, total_rate, cache_files);
}

ClusterCacheResult solve_cluster_cache(const ClusterCacheParams& p) {
  if (p.nodes < 1) throw_error("solve_cluster_cache: nodes must be >= 1");
  if (p.replication < 0.0 || p.replication > 1.0)
    throw_error("solve_cluster_cache: replication must be in [0, 1]");
  const auto pop = ZipfPopularity::make(p.files, p.alpha);
  const double n = static_cast<double>(p.nodes);

  ClusterCacheResult res;
  res.per_node_hit.reserve(static_cast<std::size_t>(p.nodes));

  if (!p.conscious || p.nodes == 1) {
    // Every node sees the full catalogue at 1/N of the external rate; by
    // symmetry one solve covers all nodes. With N == 1 the conscious split
    // degenerates to the same stream.
    const CheSolution node = che_solve(pop, {{1.0, p.files, 1.0, 1.0 / n}},
                                       p.total_rate, p.cache_files_per_node);
    res.hit_rate = node.hit_rate;
    res.per_node_hit.assign(static_cast<std::size_t>(p.nodes), node.hit_rate);
    res.characteristic_seconds = node.characteristic_seconds;
    return res;
  }

  // Locality-conscious: the hottest rep ranks are replicated (each node
  // serves 1/N of their requests at entry); the remaining ranks are owned
  // round-robin by popularity, each owner serving the full rank rate.
  const double rep = std::min(p.replication * p.cache_files_per_node, p.files);
  double hit_mass = 0.0;
  double rate_mass = 0.0;
  double replicated_hit = 0.0;
  for (int k = 0; k < p.nodes; ++k) {
    std::vector<RankClass> classes;
    if (rep >= 1.0) classes.push_back({1.0, rep, 1.0, 1.0 / n});
    const double stripe_first = rep + 1.0 + static_cast<double>(k);
    if (stripe_first <= p.files) classes.push_back({stripe_first, p.files, n, 1.0});
    if (classes.empty()) {
      res.per_node_hit.push_back(0.0);
      continue;
    }
    const CheSolution node =
        che_solve(pop, classes, p.total_rate, p.cache_files_per_node);
    res.per_node_hit.push_back(node.hit_rate);
    if (k == 0) res.characteristic_seconds = node.characteristic_seconds;
    hit_mass += node.hit_rate * node.stream_rate;
    rate_mass += node.stream_rate;

    // h: the chance a request landing on this node as *entry* hits the
    // replicated slice — per-rank presence at this node's T_C, weighted by
    // the full request probability (the paper's h = z(R*Clo/S, f)).
    if (rep >= 1.0) {
      const double t = node.characteristic_seconds;
      replicated_hit += strided_sum(1.0, rep, 1.0, [&](double r) {
        const double lambda = p.total_rate / n * pop.prob(r);
        return pop.prob(r) *
               (std::isinf(t) ? 1.0 : -std::expm1(-lambda * t));
      });
    }
  }
  res.hit_rate = rate_mass > 0.0 ? std::min(1.0, hit_mass / rate_mass) : 0.0;
  res.replicated_hit = std::min(1.0, replicated_hit / n);
  res.forwarded_fraction = (n - 1.0) * (1.0 - res.replicated_hit) / n;
  return res;
}

}  // namespace l2s::analytic
