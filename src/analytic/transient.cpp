#include "l2sim/analytic/transient.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "l2sim/common/error.hpp"

namespace l2s::analytic {
namespace {

// One piece of the lookback window [t - T, t]: the rank -> file mapping was
// rotated delta_rank ranks behind the current mapping while the piece's
// integrated request rate accumulated. Pieces with equal rotation merge, so
// churn-free shapes always collapse to a single segment.
struct Segment {
  double delta_rank = 0.0;  ///< (shift_now - shift_then) mod F
  double intensity = 0.0;   ///< integral of the served rate over the piece
};

class RateIntegral {
 public:
  RateIntegral(double base_rate, const core::ArrivalConfig& arrival,
               double horizon, double clip) {
    horizon_ = horizon;
    pre_pass_rate_ = clipped(base_rate, clip);
    const int kCells = 4096;
    step_ = horizon / kCells;
    cum_.resize(static_cast<std::size_t>(kCells) + 1, 0.0);
    double prev = clipped(base_rate * arrival.shape_multiplier(0.0), clip);
    for (int i = 1; i <= kCells; ++i) {
      const double rate =
          clipped(base_rate * arrival.shape_multiplier(step_ * i), clip);
      cum_[static_cast<std::size_t>(i)] =
          cum_[static_cast<std::size_t>(i) - 1] + 0.5 * (prev + rate) * step_;
      prev = rate;
    }
  }

  /// integral of the served rate over [t1, t2]; t1 may be negative
  /// (pre-pass warmup at the nominal stationary rate).
  [[nodiscard]] double over(double t1, double t2) const {
    double pre = 0.0;
    if (t1 < 0.0) {
      pre = -t1 * pre_pass_rate_;
      t1 = 0.0;
    }
    return pre + at(t2) - at(t1);
  }

  [[nodiscard]] double rate(double t) const {
    if (t <= 0.0) return pre_pass_rate_;
    const double x = std::min(t, horizon_) / step_;
    const auto i = static_cast<std::size_t>(
        std::min(x, static_cast<double>(cum_.size() - 2)));
    return (cum_[i + 1] - cum_[i]) / step_;
  }

 private:
  static double clipped(double rate, double clip) {
    return clip > 0.0 ? std::min(rate, clip) : rate;
  }

  [[nodiscard]] double at(double t) const {
    const double x = std::clamp(t, 0.0, horizon_) / step_;
    const auto i = static_cast<std::size_t>(
        std::min(std::floor(x), static_cast<double>(cum_.size() - 2)));
    const double frac = x - static_cast<double>(i);
    return cum_[i] + frac * (cum_[i + 1] - cum_[i]);
  }

  double horizon_ = 0.0;
  double step_ = 0.0;
  double pre_pass_rate_ = 0.0;
  std::vector<double> cum_;
};

// Split [t - window, t] at the churn epochs (engine semantics: at pass time
// j * period the mapping shifts to (j * stride) mod F, warmup unrotated).
// Pieces older than kMaxEpochs rotations are folded into the oldest
// segment — their rank mapping error only touches files the current
// ranking barely requests.
std::vector<Segment> build_segments(double t, double window,
                                    const core::ArrivalConfig& arrival,
                                    double file_count,
                                    const RateIntegral& rates) {
  std::vector<Segment> segments;
  const double start = t - window;
  if (!arrival.churn_enabled()) {
    segments.push_back({0.0, rates.over(start, t)});
    return segments;
  }
  constexpr int kMaxEpochs = 6;
  const double period = arrival.churn_period_seconds;
  const double stride = static_cast<double>(arrival.churn_stride);
  const double periods_now = std::floor(std::max(t, 0.0) / period);
  double upper = t;
  double periods = periods_now;
  while (upper > start) {
    // This piece runs from the later of (its epoch start, window start,
    // pass start) up to `upper`; the pre-pass piece keeps shift 0.
    double lower = std::max(periods * period, 0.0);
    const bool oldest = periods_now - periods >= kMaxEpochs || lower <= 0.0;
    if (oldest) lower = start;
    lower = std::max(lower, start);
    const double delta =
        std::fmod((periods_now - std::min(periods, periods_now)) * stride,
                  file_count);
    const double intensity = rates.over(lower, upper);
    if (intensity > 0.0) {
      if (!segments.empty() && segments.back().delta_rank == delta)
        segments.back().intensity += intensity;
      else
        segments.push_back({delta, intensity});
    }
    if (oldest) break;
    upper = lower;
    periods -= 1.0;
  }
  return segments;
}

// Accumulated intensity of the file currently at rank r: in a piece
// rotated delta ranks back, that file sat at rank r + delta (wrapping past
// F onto the freshly-demoted hot files).
double accumulated(const ZipfPopularity& pop, const std::vector<Segment>& segments,
                   double file_count, double r) {
  double a = 0.0;
  for (const auto& s : segments) {
    double old_rank = r + s.delta_rank;
    if (old_rank > file_count) old_rank -= file_count;
    a += pop.prob(old_rank) * s.intensity;
  }
  return a;
}

// Rank intervals on which every segment's wrap branch is constant, so the
// strided_sum tail rule only ever sees smooth integrands.
std::vector<std::pair<double, double>> smooth_intervals(
    const std::vector<Segment>& segments, double file_count) {
  std::vector<double> cuts;
  for (const auto& s : segments) {
    const double cut = std::floor(file_count - s.delta_rank);
    if (cut >= 1.0 && cut < file_count) cuts.push_back(cut);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  std::vector<std::pair<double, double>> intervals;
  double lo = 1.0;
  for (double cut : cuts) {
    if (cut >= lo) {
      intervals.emplace_back(lo, cut);
      lo = cut + 1.0;
    }
  }
  if (lo <= file_count) intervals.emplace_back(lo, file_count);
  return intervals;
}

struct WindowSums {
  double occupancy = 0.0;
  double hit_mass = 0.0;   ///< sum p(r) * P(present)
  double edge_mass = 0.0;  ///< sum exp(-A(r)) * p(rank at window edge)
};

WindowSums window_sums(const ZipfPopularity& pop,
                       const std::vector<Segment>& segments, double file_count) {
  WindowSums sums;
  const double oldest_delta = segments.back().delta_rank;
  for (const auto& [lo, hi] : smooth_intervals(segments, file_count)) {
    sums.occupancy += strided_sum(lo, hi, 1.0, [&](double r) {
      return -std::expm1(-accumulated(pop, segments, file_count, r));
    });
    sums.hit_mass += strided_sum(lo, hi, 1.0, [&](double r) {
      return pop.prob(r) * -std::expm1(-accumulated(pop, segments, file_count, r));
    });
    sums.edge_mass += strided_sum(lo, hi, 1.0, [&](double r) {
      double old_rank = r + oldest_delta;
      if (old_rank > file_count) old_rank -= file_count;
      return std::exp(-accumulated(pop, segments, file_count, r)) *
             pop.prob(old_rank);
    });
  }
  return sums;
}

}  // namespace

TransientCurve transient_curve(const ZipfPopularity& pop, double cache_files,
                               double base_rate_rps,
                               const core::ArrivalConfig& arrival,
                               double horizon_seconds,
                               const TransientOptions& options) {
  if (cache_files <= 0.0) throw_error("transient_curve: cache capacity must be positive");
  if (base_rate_rps <= 0.0) throw_error("transient_curve: rate must be positive");
  if (horizon_seconds <= 0.0) throw_error("transient_curve: horizon must be positive");
  if (options.samples < 2) throw_error("transient_curve: need at least 2 samples");

  const double file_count = strided_count(1.0, pop.files, 1.0);
  const RateIntegral rates(base_rate_rps, arrival, horizon_seconds,
                           options.clip_rate_rps);

  TransientCurve curve;
  curve.points.reserve(static_cast<std::size_t>(options.samples));
  double weight_sum = 0.0;
  double weighted_hit = 0.0;
  double window_guess = cache_files / rates.rate(0.0);

  for (int i = 0; i < options.samples; ++i) {
    const double t = horizon_seconds * static_cast<double>(i) /
                     static_cast<double>(options.samples - 1);
    TransientPoint point;
    point.t_seconds = t;
    point.rate_rps = rates.rate(t);

    if (file_count <= cache_files) {
      // Everything requested since the infinite warmup is still resident.
      point.hit_rate = 1.0;
      point.window_seconds = std::numeric_limits<double>::infinity();
    } else {
      // Bracket T(t): occupancy is monotone in the window and reaches the
      // full catalogue as the window swallows the stationary pre-pass.
      auto solve = [&](double window) {
        return window_sums(pop, build_segments(t, window, arrival, file_count, rates),
                           file_count);
      };
      double lo = window_guess;
      while (solve(lo).occupancy > cache_files) lo *= 0.5;
      double hi = lo;
      while (solve(hi).occupancy < cache_files) hi *= 2.0;

      double window = 0.5 * (lo + hi);
      WindowSums sums;
      for (int iter = 0; iter < 64; ++iter) {
        sums = solve(window);
        const double err = sums.occupancy - cache_files;
        if (std::abs(err) <= 1e-9 * cache_files || hi - lo <= 1e-10 * window) break;
        if (err > 0.0)
          hi = window;
        else
          lo = window;
        const double slope = sums.edge_mass * rates.rate(t - window);
        double next = window - err / std::max(slope, 1e-300);
        if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
        window = next;
      }
      point.window_seconds = window;
      point.hit_rate = std::min(1.0, sums.hit_mass);
      window_guess = window;  // warm-start the next sample's bracket
    }

    curve.min_hit = std::min(curve.min_hit, point.hit_rate);
    curve.max_hit = std::max(curve.max_hit, point.hit_rate);
    weighted_hit += point.hit_rate * point.rate_rps;
    weight_sum += point.rate_rps;
    curve.points.push_back(point);
  }
  curve.mean_hit = weight_sum > 0.0 ? weighted_hit / weight_sum : 0.0;
  return curve;
}

}  // namespace l2s::analytic
