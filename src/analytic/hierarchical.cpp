#include "l2sim/analytic/hierarchical.hpp"

#include <algorithm>
#include <cmath>

#include "l2sim/common/error.hpp"
#include "l2sim/model/cluster_model.hpp"

namespace l2s::analytic {
namespace {

bool transient_requested(const HierarchicalParams& p) {
  return p.horizon_seconds > 0.0 &&
         (p.arrival.shape != core::ArrivalShape::kStationary ||
          p.arrival.churn_enabled());
}

}  // namespace

HierarchicalResult solve_hierarchical(const HierarchicalParams& p) {
  if (p.workload.files == 0) throw_error("solve_hierarchical: workload has no files");
  if (p.workload.avg_request_kb <= 0.0)
    throw_error("solve_hierarchical: average request size must be positive");
  if (p.workload.alpha <= 0.0) throw_error("solve_hierarchical: alpha must be positive");
  p.model.validate();

  const double files = static_cast<double>(p.workload.files);
  const double size_kb = p.workload.avg_request_kb;
  const double file_kb =
      p.workload.avg_file_kb > 0.0 ? p.workload.avg_file_kb : size_kb;
  const model::ClusterModel queueing_level(p.model);

  HierarchicalResult res;
  // Cache capacity in file units divides by the mean *file* size, not the
  // request-weighted mean: LRU stores whole files, and the marginal
  // (coldest resident) files are drawn from the body of the size
  // distribution, not from the small-and-hot head that dominates the
  // request mean. The request mean still drives every transfer axis of the
  // queueing level below. Validated against the DES in bench/analytic_bench
  // (the small-memory stress net sits within ~1-2 pp under this
  // conversion and ~6 pp too optimistic under the request-weighted one).
  res.cache_files_per_node = bytes_to_kib(p.model.cache_bytes) / file_kb;

  // Level 1, stationary: per-node Che fixed points under the policy's
  // split. The absolute rate only calibrates T_C, so any positive rate
  // gives the stationary hit rates.
  ClusterCacheParams cache;
  cache.files = files;
  cache.alpha = p.workload.alpha;
  cache.nodes = p.model.nodes;
  cache.replication = p.conscious ? p.model.replication : 0.0;
  cache.cache_files_per_node = res.cache_files_per_node;
  cache.total_rate = p.offered_rate_rps > 0.0 ? p.offered_rate_rps : 1.0;
  cache.conscious = p.conscious;
  const ClusterCacheResult stationary = solve_cluster_cache(cache);

  res.per_node_hit = stationary.per_node_hit;
  res.replicated_hit = stationary.replicated_hit;
  res.forwarded_fraction = stationary.forwarded_fraction;

  // The transient level models the whole distributed cache as one LRU of
  // the combined capacity (the same reduction behind the paper's
  // Hlc = z(Clc/S, f)); its stationary solution anchors an additive
  // correction on top of the striped stationary hit rate, so the
  // stationary limit stays exact.
  const bool wants_transient = transient_requested(p);
  const double combined_files =
      p.conscious ? p.model.conscious_cache_bytes() / 1024.0 / file_kb
                  : res.cache_files_per_node;
  const auto pop = ZipfPopularity::make(files, p.workload.alpha);
  double transient_delta = 0.0;
  double hit = stationary.hit_rate;

  for (int iter = 1; iter <= p.max_iterations; ++iter) {
    res.iterations = iter;
    res.hit_rate = std::clamp(hit + transient_delta, 0.0, 1.0);

    // Level 2: the paper's queueing network at this hit rate.
    const model::ServerEval eval = queueing_level.evaluate(
        res.hit_rate, res.forwarded_fraction, size_kb, size_kb);
    res.max_throughput_rps = eval.throughput;
    res.bottleneck = eval.bottleneck;
    res.served_rate_rps = p.offered_rate_rps > 0.0
                              ? std::min(p.offered_rate_rps, eval.throughput)
                              : eval.throughput;

    if (!wants_transient) break;

    // Coupling: re-solve the transient cache level at the served
    // intensity, clipped at the bottleneck (an overloaded cluster cannot
    // churn its cache faster than it serves).
    TransientOptions opt;
    opt.samples = p.transient_samples;
    opt.clip_rate_rps = res.max_throughput_rps;
    res.transient = transient_curve(pop, combined_files,
                                    p.offered_rate_rps > 0.0 ? p.offered_rate_rps
                                                             : res.served_rate_rps,
                                    p.arrival, p.horizon_seconds, opt);
    res.transient_active = true;
    const double stationary_combined =
        combined_files >= strided_count(1.0, files, 1.0)
            ? 1.0
            : che_lru(pop, combined_files).hit_rate;
    const double next_delta = res.transient.mean_hit - stationary_combined;
    const bool converged = std::abs(next_delta - transient_delta) <= p.tolerance;
    transient_delta = next_delta;
    if (converged) {
      res.hit_rate = std::clamp(hit + transient_delta, 0.0, 1.0);
      break;
    }
  }

  // Mean response only exists below saturation.
  if (p.offered_rate_rps > 0.0 &&
      p.offered_rate_rps < res.max_throughput_rps * (1.0 - 1e-9)) {
    res.mean_response_seconds =
        queueing_level
            .build_network(res.hit_rate, res.forwarded_fraction, size_kb, size_kb)
            .solve(p.offered_rate_rps)
            .mean_response;
  }
  return res;
}

}  // namespace l2s::analytic
