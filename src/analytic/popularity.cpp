#include "l2sim/analytic/popularity.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::analytic {

ZipfPopularity ZipfPopularity::make(double files, double alpha) {
  if (files < 1.0) throw_error("ZipfPopularity: files must be >= 1");
  if (alpha <= 0.0) throw_error("ZipfPopularity: alpha must be positive");
  ZipfPopularity pop;
  pop.files = files;
  pop.alpha = alpha;
  pop.harmonic_total = zipf::harmonic(files, alpha);
  return pop;
}

}  // namespace l2s::analytic
