#include "l2sim/des/scheduler.hpp"

#include <algorithm>

namespace l2s::des {

// Bottom-up (Wegener) sift-down: the key being sifted came from the last
// heap position — almost always near-maximal — so instead of comparing it
// at every level (a hard-to-predict branch), descend the min-child path to
// a leaf unconditionally and then bubble the key back up. The descent does
// only child-vs-child comparisons; the up-pass is short in expectation
// because the key belongs near the bottom.
void Scheduler::sift_down(std::size_t i) {
  Key* const h = heap_.data();
  const std::size_t n = heap_.size();
  const Key key = h[i];
  const std::size_t start = i;
  while (true) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c)
      if (earlier(h[c], h[best])) best = c;
    // Start pulling the next level's children while this level's copy
    // retires; at deep backlogs each level is uncached, and a group of
    // four 16-byte keys at index 4i+1 straddles two 64-byte lines.
    const std::size_t next_first = std::min(best * kArity + 1, n - 1);
    const std::size_t next_last = std::min(best * kArity + kArity, n - 1);
    __builtin_prefetch(&h[next_first], 0);
    __builtin_prefetch(&h[next_last], 0);
    h[i] = h[best];
    i = best;
  }
  while (i > start) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(key, h[parent])) break;
    h[i] = h[parent];
    i = parent;
  }
  h[i] = key;
}

void Scheduler::reset() {
  heap_.clear();
  slots_.clear();
  free_slots_.clear();
  now_ = 0;
  next_seq_ = 0;
  processed_ = 0;
}

}  // namespace l2s::des
