#include "l2sim/des/scheduler.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::des {

void Scheduler::at(SimTime t, EventFn fn) {
  L2S_REQUIRE(t >= now_);
  heap_.push(Entry{t, next_seq_++, std::move(fn)});
}

void Scheduler::after(SimTime delay, EventFn fn) {
  L2S_REQUIRE(delay >= 0);
  at(now_ + delay, std::move(fn));
}

bool Scheduler::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is safe because
  // the entry is popped immediately after and never observed again.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.time;
  ++processed_;
  entry.fn();
  return true;
}

void Scheduler::run() {
  while (step()) {
  }
}

void Scheduler::run_until(SimTime t) {
  L2S_REQUIRE(t >= now_);
  while (!heap_.empty() && heap_.top().time <= t) step();
  now_ = t;
}

void Scheduler::reset() {
  heap_ = {};
  now_ = 0;
  next_seq_ = 0;
  processed_ = 0;
}

}  // namespace l2s::des
