#include "l2sim/des/resource.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::des {

Resource::Resource(Scheduler& sched, std::string name)
    : sched_(sched), name_(std::move(name)) {}

void Resource::submit(SimTime service, EventFn done) {
  L2S_REQUIRE(service >= 0);
  queue_.push_back(Job{service, std::move(done)});
  if (!busy_) start_next();
}

void Resource::start_next() {
  L2S_REQUIRE(!busy_ && !queue_.empty());
  busy_ = true;
  Job job = std::move(queue_.front());
  queue_.pop_front();
  const SimTime service = job.service;
  sched_.after(service, [this, service, done = std::move(job.done)]() mutable {
    busy_time_ += service;
    ++jobs_;
    busy_ = false;
    if (!queue_.empty()) start_next();
    done();
  });
}

double Resource::utilization(SimTime elapsed) const {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(busy_time_) / static_cast<double>(elapsed);
}

void Resource::reset_stats() {
  busy_time_ = 0;
  jobs_ = 0;
}

}  // namespace l2s::des
