#include "l2sim/des/cluster_workload.hpp"

#include <algorithm>
#include <vector>

#include "l2sim/common/error.hpp"
#include "l2sim/des/shard_map.hpp"

namespace l2s::des {

namespace {

// splitmix64 finalizer: the workload's only source of randomness, applied
// to (seed, request, hop) counters so draws are execution-order-free.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t draw(std::uint64_t seed, std::uint64_t request, int hop) {
  constexpr std::uint64_t kReqMul = 0x632be59bd9b4e019;
  constexpr std::uint64_t kHopMul = 0x9e3779b97f4a7c15;
  return mix(seed ^ mix(request * kReqMul +
                        kHopMul * static_cast<std::uint64_t>(hop)));
}

// Per-shard accumulators, cache-line-isolated so threaded shards never
// false-share. Every fold is commutative: merge order cannot matter.
struct alignas(64) ShardState {
  std::uint64_t events = 0;
  std::uint64_t digest = 0;
  SimTime makespan = 0;
};

struct Ctx {
  WorkloadParams p;
  ShardMap map;
  ShardedScheduler* sharded = nullptr;  // exactly one of these is set
  Scheduler* solo = nullptr;
  std::vector<ShardState> state;
};

void hop(Ctx* c, std::uint64_t request, int h, int node);

void schedule_hop(Ctx* c, int from_node, std::uint64_t request, int h, int node,
                  SimTime t) {
  EventFn fn = [c, request, h, node] { hop(c, request, h, node); };
  if (c->solo != nullptr) {
    c->solo->at(t, std::move(fn));
    return;
  }
  const int src = c->map.shard_of(from_node);
  const int dst = c->map.shard_of(node);
  if (src == dst) {
    // Node-local (or shard-internal) hand-off: stays in the shard's own
    // heap, invisible to the synchronization protocol.
    c->sharded->shard(dst).at(t, std::move(fn));
  } else {
    c->sharded->post(src, dst, t, std::move(fn));
  }
}

void hop(Ctx* c, std::uint64_t request, int h, int node) {
  const int s = c->solo != nullptr ? 0 : c->map.shard_of(node);
  Scheduler& sched = c->solo != nullptr ? *c->solo : c->sharded->shard(s);
  ShardState& st = c->state[static_cast<std::size_t>(s)];
  const SimTime now = sched.now();
  ++st.events;
  st.digest ^= mix(request ^ mix(static_cast<std::uint64_t>(h) ^
                                 mix(static_cast<std::uint64_t>(now) ^
                                     mix(static_cast<std::uint64_t>(node)))));
  if (h >= c->p.hops) {
    st.makespan = std::max(st.makespan, now);
    return;
  }
  const std::uint64_t u = draw(c->p.seed, request, h);
  const int next = static_cast<int>(u % static_cast<std::uint64_t>(c->p.nodes));
  const SimTime service =
      c->p.mean_service / 2 +
      static_cast<SimTime>(mix(u) %
                           static_cast<std::uint64_t>(c->p.mean_service));
  SimTime t = now + service;
  // A forward to a different node rides the interconnect: it pays the
  // fixed latency whether or not the peer shares this shard, so the event
  // timeline is independent of the partition. Cross-rack peers pay the
  // (typically wider) cross-rack latency.
  if (next != node) {
    t += c->p.rack_of(next) == c->p.rack_of(node) ? c->p.latency
                                                  : c->p.cross_latency();
  }
  schedule_hop(c, node, request, h + 1, next, t);
}

void seed_requests(Ctx* c) {
  for (int n = 0; n < c->p.nodes; ++n) {
    for (int k = 0; k < c->p.requests_per_node; ++k) {
      const std::uint64_t request =
          static_cast<std::uint64_t>(n) *
              static_cast<std::uint64_t>(c->p.requests_per_node) +
          static_cast<std::uint64_t>(k);
      // Staggered starts (hop index -1 in draw-space) so the cluster does
      // not fire in lockstep at t = 0.
      const SimTime t0 = 1 + static_cast<SimTime>(
                                 draw(c->p.seed, request, c->p.hops + 1) %
                                 static_cast<std::uint64_t>(c->p.mean_service));
      EventFn fn = [c, request, n] { hop(c, request, 0, n); };
      if (c->solo != nullptr) {
        c->solo->at(t0, std::move(fn));
      } else {
        c->sharded->shard(c->map.shard_of(n)).at(t0, std::move(fn));
      }
    }
  }
}

WorkloadResult merge(const Ctx& c) {
  WorkloadResult r;
  for (const ShardState& st : c.state) {  // shard-index order; folds commute
    r.events += st.events;
    r.digest ^= st.digest;
    r.makespan = std::max(r.makespan, st.makespan);
  }
  return r;
}

void validate(const WorkloadParams& p) {
  L2S_REQUIRE(p.nodes >= 1);
  L2S_REQUIRE(p.requests_per_node >= 1);
  L2S_REQUIRE(p.hops >= 0);
  L2S_REQUIRE(p.latency > 0);
  L2S_REQUIRE(p.mean_service >= 2);
  L2S_REQUIRE(p.racks >= 1);
  if (p.racks > 1) L2S_REQUIRE(p.nodes % p.racks == 0);
  L2S_REQUIRE(p.cross_rack_latency >= 0);
}

}  // namespace

WorkloadResult run_cluster_workload_serial(const WorkloadParams& p) {
  validate(p);
  Scheduler sched;
  Ctx c{p, ShardMap(p.nodes, 1), nullptr, &sched, {}};
  c.state.resize(1);
  seed_requests(&c);
  sched.run();
  return merge(c);
}

WorkloadResult run_cluster_workload_sharded(const WorkloadParams& p,
                                            int shards,
                                            ShardedScheduler::Mode mode,
                                            unsigned threads) {
  const ShardMap map = workload_shard_map(p, shards);
  ShardedScheduler engine(map.shards(), std::min(p.latency, p.cross_latency()),
                          mode);
  return run_cluster_workload_on(p, engine, threads);
}

WorkloadResult run_cluster_workload_on(const WorkloadParams& p,
                                       ShardedScheduler& engine,
                                       unsigned threads) {
  validate(p);
  // The conservative promise the workload makes per message pair; a
  // pairwise engine checks each post against its own (tighter) matrix.
  L2S_REQUIRE(engine.pairwise_lookahead() ||
              engine.lookahead() <= std::min(p.latency, p.cross_latency()));
  ShardMap map = workload_shard_map(p, engine.shards());
  Ctx c{p, map, &engine, nullptr, {}};
  c.state.resize(static_cast<std::size_t>(map.shards()));
  seed_requests(&c);
  engine.run(threads);
  WorkloadResult r = merge(c);
  r.windows = engine.windows_executed();
  return r;
}

ShardMap workload_shard_map(const WorkloadParams& p, int shards) {
  const int group = p.racks > 1 && p.nodes % p.racks == 0 ? p.nodes / p.racks : 1;
  return {p.nodes, shards, group};
}

std::vector<SimTime> workload_lookahead_matrix(const WorkloadParams& p,
                                               const ShardMap& map) {
  const int n = map.shards();
  const int span = p.rack_span();
  // Nodes of [b, e) living in `rack`'s contiguous block.
  const auto overlap = [span](int rack, int b, int e) {
    const int lo = rack * span;
    return std::max(0, std::min(e, lo + span) - std::max(b, lo));
  };
  std::vector<SimTime> m(static_cast<std::size_t>(n) *
                         static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    const auto [rb, re] = map.range(r);
    for (int s = 0; s < n; ++s) {
      const auto [sb, se] = map.range(s);
      // The pair's bound is the same-rack latency iff some rack holds a
      // distinct sender/receiver pair: one node of each shard (r != s), or
      // two nodes of the shard itself (the diagonal self-post bound).
      bool share_rack = false;
      const int first = std::min(rb, sb) / span;
      const int last = (std::max(re, se) - 1) / span;
      for (int rack = first; rack <= last && !share_rack; ++rack) {
        share_rack = r == s ? overlap(rack, rb, re) >= 2
                            : overlap(rack, rb, re) >= 1 &&
                                  overlap(rack, sb, se) >= 1;
      }
      m[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
        static_cast<std::size_t>(s)] =
          share_rack ? p.latency : p.cross_latency();
    }
  }
  return m;
}

}  // namespace l2s::des
