#include "l2sim/des/process.hpp"

#include "l2sim/common/error.hpp"

namespace l2s::des {

StageChain& StageChain::use(Resource& resource, SimTime service) {
  stages_.push_back([&resource, service](EventFn next) {
    resource.submit(service, std::move(next));
  });
  return *this;
}

StageChain& StageChain::delay(SimTime d) {
  Scheduler& sched = sched_;
  stages_.push_back([&sched, d](EventFn next) { sched.after(d, std::move(next)); });
  return *this;
}

StageChain& StageChain::then(EventFn action) {
  // Stages live in a copyable std::function, but EventFn is move-only;
  // park the action behind a shared_ptr (StageChain is setup-time code,
  // not the event hot path).
  auto shared = std::make_shared<EventFn>(std::move(action));
  stages_.push_back([shared](EventFn next) {
    (*shared)();
    next();
  });
  return *this;
}

void StageChain::run(EventFn on_complete) {
  L2S_REQUIRE(on_complete != nullptr);
  struct State : std::enable_shared_from_this<State> {
    std::vector<Stage> stages;
    EventFn on_complete;
    std::size_t index = 0;

    void advance() {
      if (index >= stages.size()) {
        // Detach before invoking so the completion callback may start a new
        // chain (or destroy whatever owns this one) safely.
        EventFn done = std::move(on_complete);
        stages.clear();
        done();
        return;
      }
      Stage& stage = stages[index++];
      auto self = shared_from_this();
      stage([self]() { self->advance(); });
    }
  };
  auto state = std::make_shared<State>();
  state->stages = std::move(stages_);
  state->on_complete = std::move(on_complete);
  state->advance();
}

}  // namespace l2s::des
