#include "l2sim/des/sharded_scheduler.hpp"

#include <algorithm>
#include <barrier>
#include <bit>
#include <chrono>
#include <limits>
#include <thread>

#include "l2sim/common/env.hpp"
#include "l2sim/common/error.hpp"

namespace l2s::des {

namespace {
constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

using IntroClock = std::chrono::steady_clock;

double intro_seconds_since(IntroClock::time_point t0) {
  return std::chrono::duration<double>(IntroClock::now() - t0).count();
}

/// log2 histogram bucket: 0 for v == 0, else bit_width(v) (v in
/// [2^(b-1), 2^b) lands in bucket b), capped at the last bucket.
std::size_t log2_bucket(std::uint64_t v) {
  return std::min<std::size_t>(static_cast<std::size_t>(std::bit_width(v)),
                               ShardIntrospection::kLog2Buckets - 1);
}
}  // namespace

ShardedScheduler::ShardedScheduler(int shards, SimTime lookahead, Mode mode)
    : lookahead_(lookahead), mode_(mode) {
  L2S_REQUIRE(shards >= 1);
  L2S_REQUIRE(lookahead >= 0);
  // Threaded windows are [M, M + lookahead): a zero-width window would
  // never make progress.
  if (mode == Mode::kThreaded) L2S_REQUIRE(lookahead > 0);
  shards_.reserve(static_cast<std::size_t>(shards));
  inbox_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Scheduler>());
    inbox_.push_back(std::make_unique<Mailbox>());
    if (mode == Mode::kSequentialMerge)
      shards_.back()->share_sequence(&global_seq_);
  }
  msg_seq_.assign(static_cast<std::size_t>(shards), 0);
}

ShardedScheduler::~ShardedScheduler() = default;

void ShardedScheduler::enable_introspection() {
  if (intro_ != nullptr) return;
  intro_ = std::make_unique<ShardIntrospection>();
  intro_->shards.resize(static_cast<std::size_t>(shards()));
  for (auto& row : intro_->shards) {
    row.sent_to.assign(static_cast<std::size_t>(shards()), 0);
    row.occupancy_log2.assign(ShardIntrospection::kLog2Buckets, 0);
    row.slack_log2_us.assign(ShardIntrospection::kLog2Buckets, 0);
  }
}

void ShardedScheduler::set_pairwise_lookahead(std::vector<SimTime> matrix) {
  const std::size_t n = shards_.size();
  L2S_REQUIRE(matrix.size() == n * n);
  for (const SimTime e : matrix) L2S_REQUIRE(e > 0);
  pairwise_ = std::move(matrix);
  // Min-plus closure: D(r, s) lower-bounds any relay chain r -> ... -> s,
  // and the diagonal becomes the shortest cycle through each shard (the
  // echo bound: a shard that ran ahead must not receive its own reflected
  // message in its past). Overflow-safe because bounds are microseconds.
  closure_ = pairwise_;
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i) {
      const SimTime ik = closure_[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        const SimTime through = ik + closure_[k * n + j];
        if (through < closure_[i * n + j]) closure_[i * n + j] = through;
      }
    }
  // The effective global bound reported by lookahead().
  SimTime least = pairwise_[0];
  for (const SimTime e : pairwise_) least = std::min(least, e);
  lookahead_ = least;
}

void ShardedScheduler::post(int src, int dst, SimTime t, EventFn fn) {
  L2S_REQUIRE(src >= 0 && src < shards());
  L2S_REQUIRE(dst >= 0 && dst < shards());
  // The conservative promise: nothing crosses shards faster than the
  // (per-pair, when a matrix is installed) lookahead. Checked in both
  // modes so merge-mode development catches violations before anything
  // runs threaded.
  const SimTime bound = pair_lookahead(src, dst);
  L2S_REQUIRE(t >= shards_[static_cast<std::size_t>(src)]->now() + bound);
  if (intro_ != nullptr) {
    // In threaded mode post() runs on src's current owner (the same
    // exclusivity msg_seq_ relies on), so the row is single-writer.
    auto& row = intro_->shards[static_cast<std::size_t>(src)];
    ++row.posted;
    ++row.sent_to[static_cast<std::size_t>(dst)];
    const SimTime slack = t - (shards_[static_cast<std::size_t>(src)]->now() + bound);
    ++row.slack_log2_us[log2_bucket(static_cast<std::uint64_t>(slack) / 1000U)];
  }
  if (mode_ == Mode::kSequentialMerge) {
    // Single thread, shared sequence counter: a direct insert lands in the
    // same global (time, seq) position a mailbox round-trip would.
    ++posted_;
    shards_[static_cast<std::size_t>(dst)]->at(t, std::move(fn));
    return;
  }
  // Cross-thread messages must not drag a sender-thread arena block to a
  // receiver thread; packets are small, so the inline buffer suffices.
  L2S_REQUIRE(fn.is_inline());
  Msg m;
  m.time = t;
  m.src = static_cast<std::uint32_t>(src);
  m.seq = msg_seq_[static_cast<std::size_t>(src)]++;  // owner-thread only
  m.fn = std::move(fn);
  Mailbox& box = *inbox_[static_cast<std::size_t>(dst)];
  const std::scoped_lock lock(box.mu);
  box.msgs.push_back(std::move(m));
}

void ShardedScheduler::drain_inbox(int s) {
  Mailbox& box = *inbox_[static_cast<std::size_t>(s)];
  std::vector<Msg> taken;
  {
    const std::scoped_lock lock(box.mu);
    taken.swap(box.msgs);
  }
  if (taken.empty()) return;
  // The set of messages visible here is exactly the previous window's sends
  // (the barrier orders them before this drain), and this sort makes their
  // heap insertion order — hence their tie-break against each other — a
  // pure function of message identity, not of thread schedule.
  std::stable_sort(taken.begin(), taken.end(), [](const Msg& a, const Msg& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  Scheduler& sh = *shards_[static_cast<std::size_t>(s)];
  for (Msg& m : taken) sh.at(m.time, std::move(m.fn));
}

void ShardedScheduler::run(unsigned threads) {
  if (mode_ == Mode::kSequentialMerge) {
    run_merge();
  } else {
    run_windows(threads);
  }
}

void ShardedScheduler::run_merge() {
  const int n = shards();
  while (true) {
    int best = -1;
    Scheduler::PeekKey bk{};
    for (int s = 0; s < n; ++s) {
      Scheduler& sh = *shards_[static_cast<std::size_t>(s)];
      if (sh.empty()) continue;
      const Scheduler::PeekKey k = sh.peek();
      if (best < 0 || k.time < bk.time ||
          (k.time == bk.time && k.seq < bk.seq)) {
        best = s;
        bk = k;
      }
    }
    if (best < 0) return;
    // Every shard's clock tracks the global event clock, so handlers that
    // reach a *different* shard's scheduler (the cluster engine's front-end
    // components do) see exactly the time a single-heap run would.
    for (auto& sh : shards_) sh->advance_now(bk.time);
    shards_[static_cast<std::size_t>(best)]->step();
  }
}

void ShardedScheduler::run_windows(unsigned threads) {
  const int n = shards();
  unsigned workers = threads == 0 ? thread_budget() : threads;
  workers = std::min<unsigned>(std::max(1u, workers), static_cast<unsigned>(n));

  std::vector<SimTime> next_time(static_cast<std::size_t>(n), kNever);
  // Per-shard window ends under a pairwise matrix; written by the barrier
  // completion step, read by workers in phase B (barrier-ordered).
  std::vector<SimTime> window_ends(static_cast<std::size_t>(n), 0);
  std::atomic<int> claim{0};
  std::atomic<SimTime> window_end{0};
  std::atomic<bool> done{false};
  int phase = 0;  // completion-step private: runs on exactly one thread

  if (intro_ != nullptr) {
    // Per-worker stall accounting for this run's pool (repeated runs with
    // more workers grow the vectors, keeping earlier totals).
    if (intro_->worker_barrier_seconds.size() < workers) {
      intro_->worker_barrier_seconds.resize(workers, 0.0);
      intro_->worker_run_seconds.resize(workers, 0.0);
    }
  }

  auto on_phase = [&]() noexcept {
    if (phase == 0) {
      // All shards drained their inboxes and published their next event
      // time; compute the global floor M and open the window [M, M + L).
      SimTime m = kNever;
      for (const SimTime v : next_time) m = std::min(m, v);
      if (m == kNever) {
        done.store(true, std::memory_order_relaxed);
      } else {
        if (closure_.empty()) {
          window_end.store(m + lookahead_, std::memory_order_relaxed);
        } else {
          // Pairwise windows: shard s may run to the earliest time any
          // other shard's pending work could reach it through any relay
          // chain (the closure). Far-apart pairs get wide windows; the
          // globally-earliest shard always clears its own next event
          // (w >= m + min entry > m), so every window makes progress.
          for (std::size_t s = 0; s < static_cast<std::size_t>(n); ++s) {
            SimTime w = kNever;
            for (std::size_t r = 0; r < static_cast<std::size_t>(n); ++r) {
              if (next_time[r] == kNever) continue;
              w = std::min(w, next_time[r] +
                                  closure_[r * static_cast<std::size_t>(n) + s]);
            }
            window_ends[s] = w;
          }
        }
        window_floor_ = m;  // completion step: ordered before phase B reads
        ++windows_;
      }
      phase = 1;
    } else {
      phase = 0;
    }
    claim.store(0, std::memory_order_relaxed);
  };
  std::barrier sync(static_cast<std::ptrdiff_t>(workers), on_phase);

  // arrive_and_wait, timed into the worker's barrier-stall total when
  // introspection is on. The wait measures how long this worker idles for
  // the slowest shard of the phase — the window-imbalance signal.
  auto barrier_wait = [&](unsigned wid) {
    if (intro_ == nullptr) {
      sync.arrive_and_wait();
      return;
    }
    const auto t0 = IntroClock::now();
    sync.arrive_and_wait();
    intro_->worker_barrier_seconds[wid] += intro_seconds_since(t0);
  };

  auto worker = [&](unsigned wid) {
    while (true) {
      // Phase A: adopt shards dynamically (workers <= shards), deliver
      // mail, publish each shard's next-event time.
      for (int s = claim.fetch_add(1, std::memory_order_relaxed); s < n;
           s = claim.fetch_add(1, std::memory_order_relaxed)) {
        drain_inbox(s);
        Scheduler& sh = *shards_[static_cast<std::size_t>(s)];
        next_time[static_cast<std::size_t>(s)] =
            sh.empty() ? kNever : sh.peek().time;
      }
      barrier_wait(wid);
      if (done.load(std::memory_order_relaxed)) return;
      // Phase B: run the window. Sends stamp >= now + L(src, dst), so they
      // target future windows only; the barrier below publishes them.
      const SimTime uniform_w = window_end.load(std::memory_order_relaxed);
      for (int s = claim.fetch_add(1, std::memory_order_relaxed); s < n;
           s = claim.fetch_add(1, std::memory_order_relaxed)) {
        const SimTime w = closure_.empty()
                              ? uniform_w
                              : window_ends[static_cast<std::size_t>(s)];
        Scheduler& sh = *shards_[static_cast<std::size_t>(s)];
        if (intro_ == nullptr) {
          sh.run_window(w);
          continue;
        }
        // Window occupancy: how many events this shard actually ran in
        // [M, M+L). The counts and timeline are functions of the event
        // stream (deterministic); only run_seconds is wall-clock.
        const std::uint64_t before = sh.events_processed();
        const auto t0 = IntroClock::now();
        sh.run_window(w);
        const double dt = intro_seconds_since(t0);
        const std::uint64_t delta = sh.events_processed() - before;
        auto& row = intro_->shards[static_cast<std::size_t>(s)];
        row.run_seconds += dt;
        intro_->worker_run_seconds[wid] += dt;
        if (delta > 0) {
          row.window_events += delta;
          ++row.active_windows;
          ++row.occupancy_log2[log2_bucket(delta)];
          if (row.timeline.size() < ShardIntrospection::kTimelineCap) {
            row.timeline.emplace_back(window_floor_,
                                      static_cast<std::uint32_t>(delta));
          }
        }
      }
      barrier_wait(wid);
    }
  };

  if (workers == 1) {
    worker(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned t = 0; t + 1 < workers; ++t) pool.emplace_back([&worker, t]() { worker(t + 1); });
  worker(0);
  for (auto& t : pool) t.join();
}

std::uint64_t ShardedScheduler::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->events_processed();
  return total;
}

}  // namespace l2s::des
