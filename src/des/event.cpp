#include "l2sim/des/event.hpp"

#include <array>
#include <cstdlib>

namespace l2s::des {
namespace {

// Size classes for spilled captures. Nested continuations — a lambda that
// captures another InlineEvent (64 bytes) plus a pointer or two — land in
// the 128-byte class; 256/512 cover the deepest chains the simulator
// builds (remote fetch with a send-back continuation). Anything larger is
// rare enough to go straight to the global allocator.
constexpr std::array<std::size_t, 4> kClassSizes = {64, 128, 256, 512};

struct FreeBlock {
  FreeBlock* next;
};

struct ThreadArena {
  std::array<FreeBlock*, kClassSizes.size()> free_lists{};
  EventArena::Stats stats;

  ~ThreadArena() { release_lists(); }

  void release_lists() noexcept {
    for (FreeBlock*& head : free_lists) {
      while (head != nullptr) {
        FreeBlock* next = head->next;
        ::operator delete(static_cast<void*>(head));
        head = next;
      }
    }
  }

  static int class_for(std::size_t size) noexcept {
    for (std::size_t i = 0; i < kClassSizes.size(); ++i)
      if (size <= kClassSizes[i]) return static_cast<int>(i);
    return -1;
  }
};

ThreadArena& arena() noexcept {
  thread_local ThreadArena instance;
  return instance;
}

}  // namespace

void* EventArena::allocate(std::size_t size) {
  ThreadArena& a = arena();
  ++a.stats.outstanding;
  const int cls = ThreadArena::class_for(size);
  if (cls < 0) {
    ++a.stats.oversize;
    return ::operator new(size);
  }
  FreeBlock*& head = a.free_lists[static_cast<std::size_t>(cls)];
  if (head != nullptr) {
    ++a.stats.reused_blocks;
    FreeBlock* block = head;
    head = block->next;
    return block;
  }
  ++a.stats.fresh_blocks;
  return ::operator new(kClassSizes[static_cast<std::size_t>(cls)]);
}

void EventArena::deallocate(void* p, std::size_t size) noexcept {
  if (p == nullptr) return;
  ThreadArena& a = arena();
  --a.stats.outstanding;
  const int cls = ThreadArena::class_for(size);
  if (cls < 0) {
    ::operator delete(p);
    return;
  }
  FreeBlock*& head = a.free_lists[static_cast<std::size_t>(cls)];
  auto* block = static_cast<FreeBlock*>(p);
  block->next = head;
  head = block;
}

EventArena::Stats EventArena::stats() noexcept { return arena().stats; }

void EventArena::trim() noexcept {
  ThreadArena& a = arena();
  a.release_lists();
  // `outstanding` tracks live blocks and must survive a trim; the traffic
  // counters restart so callers can measure a fresh interval.
  a.stats.fresh_blocks = 0;
  a.stats.reused_blocks = 0;
  a.stats.oversize = 0;
}

}  // namespace l2s::des
